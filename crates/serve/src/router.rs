//! Structural-hash shard router: N in-process [`Server`] shards over one
//! shared model.
//!
//! The north-star deployment serves heavy repeat traffic, and a single
//! `Server` has exactly one global [`PredictionCache`] mutex — every
//! worker's probe serialises on it. The router removes that cross-worker
//! contention point by construction: it owns `N` independent `Server`
//! shards, each with its *own* bounded queue, worker pool and prediction
//! cache, all borrowing the same [`Arc<GamoraReasoner>`] (PR 2 made
//! inference `&self`, so shards add only scratch memory, never model
//! copies).
//!
//! Routing is by **structural fingerprint**: a submission's canonical
//! whole-graph hash picks its shard, so every repeat (or renumbered
//! isomorph) of a netlist lands on the shard whose cache already holds it
//! — shard affinity turns the per-shard caches into one logically
//! partitioned cache with no shared lock. The signature computed for
//! routing travels with the job, so shard workers never re-hash
//! router-submitted AIGs.
//!
//! The router is a thin, stateless fan-out: it holds no queue of its own,
//! so the bounded-ingress guarantees of the underlying [`Server`]s
//! (admission control, deadlines, fail-fast shutdown) apply per shard
//! unchanged.

use crate::cache::GraphSignature;
use crate::scheduler::{
    AnalysisKind, Health, JobOutput, JobTicket, ServeConfig, ServeError, ServeStats, Server,
    SubmitError,
};
use gamora::GamoraReasoner;
use gamora_aig::hasher::structural_fingerprint;
use gamora_aig::Aig;
use gamora_obs::Snapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A set of [`Server`] shards over one shared reasoner, routed by
/// structural fingerprint.
pub struct ShardRouter {
    shards: Vec<Server>,
    /// Whether the shards were started with structural-hash caching on.
    /// With caching off the full [`GraphSignature`] would be dropped
    /// unused by the workers, so routing computes only the whole-graph
    /// fingerprint (one O(nodes) pass, no retained per-node hash vector).
    hashing_enabled: bool,
    /// Transient-failure retries performed by
    /// [`ShardRouter::submit_all_retrying`]; folded into
    /// [`ShardRouter::stats`].
    retries: AtomicU64,
}

/// Bounded, deterministic retry policy for
/// [`ShardRouter::submit_all_retrying`]: transient refusals —
/// [`SubmitError::Overloaded`] at admission, [`ServeError::JobDropped`]
/// when a worker died under the job — are retried with exponential
/// backoff; terminal answers ([`ServeError::AnalysisFailed`],
/// [`ServeError::DeadlineExpired`]) are returned as-is.
#[derive(Copy, Clone, Debug)]
pub struct RetryPolicy {
    /// Maximum retries per job on top of its first attempt.
    pub max_retries: u32,
    /// Base backoff: retry `k` (0-based) sleeps `backoff_micros << k`
    /// (deterministic — chaos tests replay identically; no jitter
    /// source is needed inside one process).
    pub backoff_micros: u64,
    /// Absolute give-up time: once reached, no further retry is
    /// scheduled and the job resolves with what it has. Also shipped to
    /// the shards as the per-job deadline, so queued work respects it
    /// too.
    pub deadline: Option<Instant>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff_micros: 500,
            deadline: None,
        }
    }
}

/// Sleeps retry `attempt`'s backoff, clamped to the policy deadline.
/// Returns `false` — without sleeping — when the deadline has already
/// passed, telling the caller to stop retrying.
fn backoff_sleep(policy: &RetryPolicy, attempt: u32) -> bool {
    let scale = 1u64 << attempt.min(16);
    let mut pause = Duration::from_micros(policy.backoff_micros.saturating_mul(scale));
    if let Some(deadline) = policy.deadline {
        let Some(left) = deadline.checked_duration_since(Instant::now()) else {
            return false;
        };
        pause = pause.min(left);
    }
    std::thread::sleep(pause);
    true
}

/// A routed submission: the target shard plus the signature to ship with
/// the job (present iff the shards cache).
struct Routed {
    shard: usize,
    sig: Option<GraphSignature>,
}

impl ShardRouter {
    /// Starts `num_shards` servers, each configured with `config`, all
    /// sharing `reasoner` read-only. Total worker threads are
    /// `num_shards * config.workers`; total queued jobs are bounded by
    /// `num_shards * config.queue_capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero (or `config` is invalid, see
    /// [`Server::start_shared`]).
    pub fn start(
        reasoner: Arc<GamoraReasoner>,
        num_shards: usize,
        config: ServeConfig,
    ) -> ShardRouter {
        assert!(num_shards > 0, "at least one shard");
        let shards = (0..num_shards)
            .map(|_| Server::start_shared(Arc::clone(&reasoner), config))
            .collect();
        ShardRouter {
            shards,
            hashing_enabled: config.cache_capacity > 0,
            retries: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Records the snapshot load time once, into shard 0's registry (one
    /// model was loaded for the whole fleet, so the merged metric view
    /// reports exactly one observation). See
    /// [`Server::record_snapshot_load`].
    pub fn record_snapshot_load(&self, micros: u64) {
        self.shards[0].record_snapshot_load(micros);
    }

    /// The shard a netlist routes to (stable across submissions and
    /// renumbering: it is a function of the canonical fingerprint only).
    pub fn shard_of(&self, aig: &Aig) -> usize {
        (structural_fingerprint(aig) % self.shards.len() as u64) as usize
    }

    /// Computes the routing decision for one submission. With caching on,
    /// the full signature is computed once here and shipped with the job
    /// (shard workers never re-hash); with caching off, only the
    /// fingerprint is computed — no per-node hash vector is retained.
    fn route(&self, aig: &Aig) -> Routed {
        if self.hashing_enabled {
            let sig = GraphSignature::of(aig);
            Routed {
                shard: (sig.key.fingerprint % self.shards.len() as u64) as usize,
                sig: Some(sig),
            }
        } else {
            Routed {
                shard: self.shard_of(aig),
                sig: None,
            }
        }
    }

    /// Routes and enqueues a job, blocking while the target shard's queue
    /// is at capacity. See [`Server::submit`].
    pub fn submit(&self, aig: Aig, kind: AnalysisKind) -> Result<JobTicket, SubmitError> {
        let r = self.route(&aig);
        self.shards[r.shard].submit_routed(aig, kind, r.sig, None, true)
    }

    /// Non-blocking routed admission: fails with
    /// [`SubmitError::Overloaded`] when the target shard's queue is full.
    /// See [`Server::try_submit`].
    pub fn try_submit(&self, aig: Aig, kind: AnalysisKind) -> Result<JobTicket, SubmitError> {
        let r = self.route(&aig);
        self.shards[r.shard].submit_routed(aig, kind, r.sig, None, false)
    }

    /// Routed submission with a deadline `ttl` from now. See
    /// [`Server::submit_within`].
    pub fn submit_within(
        &self,
        aig: Aig,
        kind: AnalysisKind,
        ttl: Duration,
    ) -> Result<JobTicket, SubmitError> {
        let deadline = Instant::now() + ttl;
        let r = self.route(&aig);
        self.shards[r.shard].submit_routed(aig, kind, r.sig, Some(deadline), true)
    }

    /// Non-blocking routed admission with a deadline. See
    /// [`Server::try_submit_within`].
    pub fn try_submit_within(
        &self,
        aig: Aig,
        kind: AnalysisKind,
        ttl: Duration,
    ) -> Result<JobTicket, SubmitError> {
        let deadline = Instant::now() + ttl;
        let r = self.route(&aig);
        self.shards[r.shard].submit_routed(aig, kind, r.sig, Some(deadline), false)
    }

    /// Routes every job to its shard (one bulk enqueue per shard, so each
    /// shard's worker sees its slice as one coalescable burst), waits for
    /// all of them, and returns the outputs in input order. Fails with
    /// the first dropped job.
    pub fn submit_all(&self, jobs: Vec<(Aig, AnalysisKind)>) -> Result<Vec<JobOutput>, ServeError> {
        // (input index, aig, kind, optional precomputed signature)
        type RoutedJob = (usize, Aig, AnalysisKind, Option<GraphSignature>);
        let n = jobs.len();
        let mut per_shard: Vec<Vec<RoutedJob>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, (aig, kind)) in jobs.into_iter().enumerate() {
            let r = self.route(&aig);
            per_shard[r.shard].push((i, aig, kind, r.sig));
        }
        let mut tickets: Vec<Option<JobTicket>> = (0..n).map(|_| None).collect();
        // Bursts already admitted to earlier shards, so an abort (a shard
        // shutting down mid-routing) can retract their still-queued jobs
        // instead of letting those shards spend forward passes answering
        // receivers that die with our error return.
        let mut admitted: Vec<(&Server, u64)> = Vec::new();
        for (shard, group) in self.shards.iter().zip(per_shard) {
            if group.is_empty() {
                continue;
            }
            let idxs: Vec<usize> = group.iter().map(|(i, ..)| *i).collect();
            let result = shard.submit_batch(
                group
                    .into_iter()
                    .map(|(_, aig, kind, sig)| (aig, kind, sig))
                    .collect(),
            );
            let (burst, shard_tickets) = match result {
                Ok(ok) => ok,
                Err(_) => {
                    for (earlier, burst) in admitted {
                        earlier.retract_burst(burst);
                    }
                    return Err(ServeError::JobDropped);
                }
            };
            admitted.push((shard, burst));
            for (i, t) in idxs.into_iter().zip(shard_tickets) {
                tickets[i] = Some(t);
            }
        }
        tickets
            .into_iter()
            .map(|t| t.expect("every job routed").wait())
            .collect()
    }

    /// One non-blocking admission attempt with Overloaded-retry: routes
    /// `aig`, tries its shard, and on [`SubmitError::Overloaded`] backs
    /// off and retries while `attempts` has budget left. `None` means
    /// the job could not be admitted (budget or deadline exhausted, or
    /// the fleet is shutting down).
    fn admit_retrying(
        &self,
        aig: &Aig,
        kind: AnalysisKind,
        policy: &RetryPolicy,
        attempts: &mut u32,
    ) -> Option<JobTicket> {
        loop {
            let r = self.route(aig);
            match self.shards[r.shard].submit_routed(
                aig.clone(),
                kind,
                r.sig,
                policy.deadline,
                false,
            ) {
                Ok(ticket) => return Some(ticket),
                Err(SubmitError::Overloaded) => {
                    if *attempts >= policy.max_retries || !backoff_sleep(policy, *attempts) {
                        return None;
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    *attempts += 1;
                }
                Err(SubmitError::ShuttingDown) => return None,
            }
        }
    }

    /// [`ShardRouter::submit_all`] with per-job outcomes and bounded
    /// retry around transient failures — the degraded-conditions
    /// ingress. Unlike `submit_all`, it never fails wholesale: every job
    /// gets exactly one terminal `Result`, in input order.
    ///
    /// * Admission [`SubmitError::Overloaded`] (shed queues, injected
    ///   admission faults) and [`ServeError::JobDropped`] (the job's
    ///   worker died mid-batch and was respawned) are *transient*:
    ///   retried up to [`RetryPolicy::max_retries`] times with
    ///   deterministic exponential backoff, then reported as
    ///   [`ServeError::JobDropped`].
    /// * [`ServeError::AnalysisFailed`] (injected stage error, or the
    ///   submission is quarantined for killing workers) and
    ///   [`ServeError::DeadlineExpired`] are *terminal*: retrying a
    ///   poison job would just respawn-loop the pool.
    ///
    /// Jobs are admitted as one pass first (so shards batch the burst)
    /// and waited on in input order; a retried job re-routes from
    /// scratch, which matters when its shard is the one that just lost a
    /// worker.
    pub fn submit_all_retrying(
        &self,
        jobs: Vec<(Aig, AnalysisKind)>,
        policy: &RetryPolicy,
    ) -> Vec<Result<JobOutput, ServeError>> {
        let n = jobs.len();
        let mut results: Vec<Option<Result<JobOutput, ServeError>>> =
            (0..n).map(|_| None).collect();
        // Phase A: admit everything (index, subject, kind, retries spent,
        // ticket). Jobs that exhaust admission resolve immediately.
        let mut pending: Vec<(usize, Aig, AnalysisKind, u32, Option<JobTicket>)> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (aig, kind))| (i, aig, kind, 0u32, None))
            .collect();
        for slot in &mut pending {
            let (i, aig, kind, attempts, ticket) = slot;
            *ticket = self.admit_retrying(aig, *kind, policy, attempts);
            if ticket.is_none() {
                results[*i] = Some(Err(ServeError::JobDropped));
            }
        }
        // Phase B: wait in input order; dropped jobs are resubmitted with
        // whatever retry budget they have left.
        for (i, aig, kind, mut attempts, ticket) in pending {
            let Some(mut current) = ticket else { continue };
            let outcome = loop {
                match current.wait() {
                    Ok(out) => break Ok(out),
                    Err(ServeError::JobDropped) => {
                        if attempts >= policy.max_retries || !backoff_sleep(policy, attempts) {
                            break Err(ServeError::JobDropped);
                        }
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        attempts += 1;
                        match self.admit_retrying(&aig, kind, policy, &mut attempts) {
                            Some(ticket) => current = ticket,
                            None => break Err(ServeError::JobDropped),
                        }
                    }
                    Err(terminal) => break Err(terminal),
                }
            };
            results[i] = Some(outcome);
        }
        results
            .into_iter()
            .map(|r| r.expect("every job resolved"))
            .collect()
    }

    /// Aggregated counters over all shards (sums; `peak_queued` and
    /// `health` merge by max) plus this router's retry count.
    pub fn stats(&self) -> ServeStats {
        let mut total = ServeStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats());
        }
        total.retries += self.retries.load(Ordering::Relaxed);
        total
    }

    /// Fleet health: the *worst* state across the shards (the same
    /// max-merge rule as [`ServeStats::merge`] and the `serve_health`
    /// gauge).
    pub fn health(&self) -> Health {
        self.shards
            .iter()
            .map(Server::health)
            .max()
            .unwrap_or_default()
    }

    /// Per-shard counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.shards.iter().map(Server::stats).collect()
    }

    /// One fleet-wide metric snapshot: every shard's registry snapshot
    /// merged by name (counters sum, gauges keep the max, stage
    /// histograms add bucket-wise — so fleet percentiles are computed
    /// over the union of all shards' observations).
    pub fn metrics(&self) -> Snapshot {
        let mut merged = Snapshot::default();
        for shard in &self.shards {
            merged.merge(&shard.metrics());
        }
        merged
    }

    /// Per-shard metric snapshots, in shard order.
    pub fn shard_metrics(&self) -> Vec<Snapshot> {
        self.shards.iter().map(Server::metrics).collect()
    }

    /// Begins a graceful shutdown on every shard: new submissions fail
    /// fast, queued work is drained.
    pub fn begin_shutdown(&self) {
        for shard in &self.shards {
            shard.begin_shutdown();
        }
    }

    /// Drains all shards, stops their workers, and returns the aggregated
    /// stats.
    pub fn shutdown(self) -> ServeStats {
        // Flip every shard's flag first so they drain concurrently, then
        // join them one by one. The retry counter lives on the router,
        // not the shards, so fold it in here like `stats()` does.
        self.begin_shutdown();
        let mut total = ServeStats {
            retries: self.retries.load(Ordering::Relaxed),
            ..ServeStats::default()
        };
        for shard in self.shards {
            total.merge(&shard.shutdown());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora::{ModelDepth, Predictions, ReasonerConfig, TrainConfig};
    use gamora_aig::aiger;
    use gamora_circuits::csa_multiplier;

    fn tiny_trained() -> Arc<GamoraReasoner> {
        let m = csa_multiplier(3);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m.aig],
            &TrainConfig {
                epochs: 15,
                log_every: 0,
                ..TrainConfig::default()
            },
        );
        Arc::new(reasoner)
    }

    #[test]
    fn routing_is_deterministic_and_renumbering_invariant() {
        let router = ShardRouter::start(tiny_trained(), 4, ServeConfig::default());
        let aig = csa_multiplier(4).aig;
        let shard = router.shard_of(&aig);
        assert_eq!(router.shard_of(&aig), shard, "stable across calls");
        // A renumbered isomorph routes identically (canonical fingerprint).
        let mut buf = Vec::new();
        aiger::write_binary(&aig, &mut buf).unwrap();
        let isomorph = aiger::read(&buf[..]).unwrap();
        assert_eq!(
            router.shard_of(&isomorph),
            shard,
            "renumbering must not change the shard"
        );
        router.shutdown();
    }

    /// Shard affinity end to end: distinct netlists spread over shards,
    /// and every repeat of a netlist is served from its shard's warm
    /// cache — across the whole router, repeats cost zero extra forward
    /// passes.
    #[test]
    fn repeats_hit_their_shards_warm_cache() {
        let reasoner = tiny_trained();
        let router = ShardRouter::start(Arc::clone(&reasoner), 3, ServeConfig::default());
        let subjects: Vec<gamora_aig::Aig> = (2..7usize).map(|b| csa_multiplier(b).aig).collect();

        // Round 1: cold — every distinct graph pays its forward slot.
        for aig in &subjects {
            let out = router
                .submit(aig.clone(), AnalysisKind::Classify)
                .expect("admitted")
                .wait()
                .expect("answered");
            assert!(!out.cache_hit, "first submission is a miss");
        }
        let warm = router.stats();
        assert_eq!(warm.cache_misses, subjects.len() as u64);

        // Round 2 (plus a renumbered round 3): all hits, no new forwards.
        let expected: Vec<Predictions> = subjects.iter().map(|a| reasoner.predict(a)).collect();
        for (aig, exp) in subjects.iter().zip(&expected) {
            let repeat = router
                .submit(aig.clone(), AnalysisKind::Classify)
                .expect("admitted")
                .wait()
                .expect("answered");
            assert!(repeat.cache_hit, "repeat must land on the warm shard");
            assert_eq!(repeat.predictions.root_leaf, exp.root_leaf);

            let mut buf = Vec::new();
            aiger::write_binary(aig, &mut buf).unwrap();
            let isomorph = aiger::read(&buf[..]).unwrap();
            let transferred = router
                .submit(isomorph, AnalysisKind::Classify)
                .expect("admitted")
                .wait()
                .expect("answered");
            assert!(
                transferred.cache_hit,
                "a renumbered isomorph routes to the same warm shard"
            );
        }
        let stats = router.shutdown();
        assert_eq!(
            stats.forward_passes, warm.forward_passes,
            "repeats and isomorphs must not run the model"
        );
        assert_eq!(stats.cache_hits, 2 * subjects.len() as u64);
        assert_eq!(stats.jobs, 3 * subjects.len() as u64);
    }

    #[test]
    fn submit_all_preserves_input_order_across_shards() {
        let reasoner = tiny_trained();
        let router = ShardRouter::start(Arc::clone(&reasoner), 4, ServeConfig::default());
        // Distinct sizes so outputs are attributable to their inputs.
        let subjects: Vec<gamora_aig::Aig> = (2..8usize).map(|b| csa_multiplier(b).aig).collect();
        let jobs: Vec<(gamora_aig::Aig, AnalysisKind)> = subjects
            .iter()
            .map(|a| (a.clone(), AnalysisKind::Classify))
            .collect();
        let outs = router.submit_all(jobs).expect("all answered");
        assert_eq!(outs.len(), subjects.len());
        for (aig, out) in subjects.iter().zip(&outs) {
            assert_eq!(
                out.predictions.num_nodes(),
                aig.num_nodes(),
                "output must line up with its input"
            );
        }
        router.shutdown();
    }

    #[test]
    fn router_shutdown_fails_new_submissions_fast() {
        let router = ShardRouter::start(tiny_trained(), 2, ServeConfig::default());
        router.begin_shutdown();
        assert_eq!(
            router
                .submit(csa_multiplier(3).aig, AnalysisKind::Classify)
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        let stats = router.shutdown();
        assert_eq!(stats.jobs_submitted, 0);
    }
}
