//! Micro-batching worker-pool scheduler.
//!
//! Jobs (an AIG plus the requested analysis) are submitted from any thread
//! and answered through per-job channels. Worker threads drain the shared
//! queue in batches of up to `max_batch`, answer what they can from the
//! structural-hash [`PredictionCache`], coalesce the remaining misses into
//! **one** GNN forward pass via [`GamoraReasoner::predict_batch`], then fan
//! the results back out — the serving analogue of the paper's Figure 8
//! batched inference.
//!
//! Built on `std::thread` + `std::sync::mpsc` channels only (the same
//! no-external-runtime discipline as `gamora_gnn::parallel`). The server
//! holds exactly **one** trained reasoner behind an [`Arc`]; inference is
//! `&self`, so every worker shares those weights read-only and carries
//! only private scratch: an [`InferenceScratch`] (preallocated forward
//! buffers) plus a [`BatchScratch`] (reusable merged batch graph,
//! features and predictions) and a recycled per-job output vector. A
//! warmed-up worker therefore runs the whole miss path — graph
//! construction, feature encoding, batch assembly and the forward pass —
//! without heap allocation. Forward passes never contend on a lock, and
//! memory scales with worker count only by the scratch size, not by the
//! model size.

use crate::cache::{GraphSignature, HitKind, PredictionCache};
use gamora::{
    extract_from_predictions, lsb_correction, BatchScratch, GamoraReasoner, InferenceScratch,
    Predictions,
};
use gamora_aig::hasher::FxHashMap;
use gamora_aig::Aig;
use gamora_exact::ExtractedAdder;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Which analysis a job requests.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum AnalysisKind {
    /// Per-node classification only (tasks 1–3).
    #[default]
    Classify,
    /// Classification plus adder-tree extraction with the paper's LSB
    /// post-processing.
    ExtractAdders,
}

/// Scheduler configuration.
#[derive(Copy, Clone, Debug)]
pub struct ServeConfig {
    /// Maximum jobs coalesced into one forward pass.
    pub max_batch: usize,
    /// Inference worker threads (each carries only a scratch workspace;
    /// the model itself is shared).
    pub workers: usize,
    /// Capacity of the structural-hash prediction cache, in graphs.
    /// `0` disables every structural-hash shortcut — cache lookups *and*
    /// intra-batch duplicate coalescing — so each job pays a full model
    /// slot (the cold-path throughput benchmark).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            workers: 1,
            cache_capacity: 256,
        }
    }
}

/// A completed job.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// Per-node predictions for the submitted AIG.
    pub predictions: Predictions,
    /// Extracted adders (present iff [`AnalysisKind::ExtractAdders`]).
    pub adders: Option<Vec<ExtractedAdder>>,
    /// Whether the predictions came from the structural-hash cache.
    pub cache_hit: bool,
    /// Wall time from submission to completion, in microseconds.
    pub latency_micros: u64,
}

/// Why a submitted job was not answered.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server dropped the job without answering it — a worker panic,
    /// or a shutdown racing the submission. The job may or may not have
    /// run; resubmit against a live server.
    JobDropped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::JobDropped => write!(f, "serve worker dropped the job before answering"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Receiving side of a submitted job.
pub struct JobTicket {
    rx: mpsc::Receiver<JobOutput>,
}

impl JobTicket {
    /// Blocks until the job completes.
    ///
    /// Returns [`ServeError::JobDropped`] instead of panicking when the
    /// server died or shut down before answering, so a draining server
    /// fails jobs gracefully.
    pub fn wait(self) -> Result<JobOutput, ServeError> {
        self.rx.recv().map_err(|_| ServeError::JobDropped)
    }
}

struct Job {
    aig: Aig,
    kind: AnalysisKind,
    submitted: Instant,
    tx: mpsc::Sender<JobOutput>,
}

#[derive(Default)]
struct Counters {
    jobs: AtomicU64,
    batches: AtomicU64,
    forward_passes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// A point-in-time snapshot of server counters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs completed.
    pub jobs: u64,
    /// Batches executed (cache-only batches included).
    pub batches: u64,
    /// GNN forward passes run (one per batch with at least one miss).
    pub forward_passes: u64,
    /// Jobs answered from the cache.
    pub cache_hits: u64,
    /// Jobs that needed the model.
    pub cache_misses: u64,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// `None` when caching is disabled (`cache_capacity == 0`).
    cache: Mutex<Option<PredictionCache>>,
    /// Whether structural-hash shortcuts (cache + intra-batch dedup) are on.
    hashing_enabled: bool,
    counters: Counters,
    max_batch: usize,
}

/// A running inference server over one trained reasoner.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool over an owned reasoner (wraps it in an
    /// [`Arc`] and delegates to [`Server::start_shared`]).
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.workers` is zero.
    pub fn start(reasoner: GamoraReasoner, config: ServeConfig) -> Server {
        Server::start_shared(Arc::new(reasoner), config)
    }

    /// Starts the worker pool over an already-shared reasoner. The server
    /// holds exactly this one model; every worker borrows it through the
    /// `Arc` and owns nothing but a private scratch workspace, so callers
    /// can keep using (or serve elsewhere) the same instance concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.workers` is zero.
    pub fn start_shared(reasoner: Arc<GamoraReasoner>, config: ServeConfig) -> Server {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.workers > 0, "at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(
                (config.cache_capacity > 0).then(|| PredictionCache::new(config.cache_capacity)),
            ),
            hashing_enabled: config.cache_capacity > 0,
            counters: Counters::default(),
            max_batch: config.max_batch,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let model = Arc::clone(&reasoner);
                std::thread::Builder::new()
                    .name(format!("gamora-serve-{i}"))
                    .spawn(move || {
                        let mut state = WorkerState {
                            scratch: model.scratch(),
                            batch_ws: model.batch_scratch(),
                            outs: Vec::new(),
                        };
                        worker_loop(&shared, &model, &mut state);
                    })
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Enqueues a job; returns a ticket to wait on.
    pub fn submit(&self, aig: Aig, kind: AnalysisKind) -> JobTicket {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            aig,
            kind,
            submitted: Instant::now(),
            tx,
        };
        self.shared
            .queue
            .lock()
            .expect("queue poisoned")
            .push_back(job);
        self.shared.available.notify_one();
        JobTicket { rx }
    }

    /// Submits many jobs atomically (one queue lock, so an idle worker
    /// sees them as one coalescable burst) and waits for all of them,
    /// preserving input order. Fails with the first dropped job.
    pub fn submit_all(&self, jobs: Vec<(Aig, AnalysisKind)>) -> Result<Vec<JobOutput>, ServeError> {
        let mut tickets = Vec::with_capacity(jobs.len());
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            for (aig, kind) in jobs {
                let (tx, rx) = mpsc::channel();
                queue.push_back(Job {
                    aig,
                    kind,
                    submitted: Instant::now(),
                    tx,
                });
                tickets.push(JobTicket { rx });
            }
        }
        self.shared.available.notify_all();
        tickets.into_iter().map(JobTicket::wait).collect()
    }

    /// Current counter values.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            jobs: c.jobs.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            forward_passes: c.forward_passes.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Drains outstanding work and stops the workers.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_workers();
        self.stats()
    }

    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Defensive: should anything still sit in the queue once every
        // worker is gone, drop it so waiting clients observe
        // `ServeError::JobDropped` instead of blocking forever.
        if let Ok(mut queue) = self.shared.queue.lock() {
            queue.clear();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Per-worker reusable state: every buffer a miss batch needs, preallocated
/// and recycled so the steady state never allocates.
struct WorkerState {
    scratch: InferenceScratch,
    batch_ws: BatchScratch,
    outs: Vec<Predictions>,
}

fn worker_loop(shared: &Shared, model: &GamoraReasoner, state: &mut WorkerState) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if !queue.is_empty() {
                    let take = shared.max_batch.min(queue.len());
                    break queue.drain(..take).collect::<Vec<Job>>();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue poisoned");
            }
        };
        // A panicking batch (a pathological submission) must not take the
        // worker down with jobs still queued behind it: the unwinding
        // batch drops its senders — those clients observe
        // [`ServeError::JobDropped`] — and the worker keeps draining the
        // queue. Scratch buffers are resized from scratch on every use,
        // so a half-written workspace cannot poison later batches.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(shared, model, state, batch);
        }));
        if outcome.is_err() {
            eprintln!("gamora-serve: batch panicked; its jobs were dropped");
        }
    }
}

fn run_batch(shared: &Shared, model: &GamoraReasoner, state: &mut WorkerState, batch: Vec<Job>) {
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);

    // Phase 1: resolve from the cache under one short lock. With hashing
    // disabled the signatures are provably unused — skip the O(nodes)
    // hash passes entirely so cold mode measures pure model throughput.
    let signatures: Vec<GraphSignature> = if shared.hashing_enabled {
        batch.iter().map(|j| GraphSignature::of(&j.aig)).collect()
    } else {
        Vec::new()
    };
    let mut served: Vec<Option<(Predictions, HitKind)>> = {
        let mut cache = shared.cache.lock().expect("cache poisoned");
        match cache.as_mut() {
            Some(cache) => signatures.iter().map(|sig| cache.lookup(sig)).collect(),
            None => vec![None; batch.len()],
        }
    };

    // Phase 2: one coalesced forward pass over the misses. Duplicate
    // submissions inside the batch (the common hammering pattern) share a
    // single forward slot, so they are answered without extra model work
    // and report as structural-hash hits just like phase-1 resolutions.
    let mut hit_flags: Vec<bool> = served.iter().map(Option::is_some).collect();
    let miss_idx: Vec<usize> = (0..batch.len()).filter(|&i| !hit_flags[i]).collect();
    if !miss_idx.is_empty() {
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(miss_idx.len());
        if shared.hashing_enabled {
            let mut seen: FxHashMap<(u64, u64), usize> = FxHashMap::default();
            for &i in &miss_idx {
                let sig = &signatures[i];
                let key = (sig.key.fingerprint, sig.identity);
                match seen.get(&key) {
                    Some(&slot) => {
                        slot_of.push(slot);
                        hit_flags[i] = true; // coalesced duplicate
                    }
                    None => {
                        seen.insert(key, unique.len());
                        slot_of.push(unique.len());
                        unique.push(i);
                    }
                }
            }
        } else {
            // Cold mode: no signatures, no coalescing — one slot per job.
            for &i in &miss_idx {
                slot_of.push(unique.len());
                unique.push(i);
            }
        }
        let aigs: Vec<&Aig> = unique.iter().map(|&i| &batch[i].aig).collect();
        let WorkerState {
            scratch,
            batch_ws,
            outs,
        } = state;
        model.predict_batch_into(batch_ws, scratch, &aigs, outs);
        shared
            .counters
            .forward_passes
            .fetch_add(1, Ordering::Relaxed);
        {
            let mut cache = shared.cache.lock().expect("cache poisoned");
            if let Some(cache) = cache.as_mut() {
                for (&i, preds) in unique.iter().zip(outs.iter()) {
                    cache.insert(&signatures[i], preds.clone());
                }
            }
        }
        for (pos, &i) in miss_idx.iter().enumerate() {
            served[i] = Some((outs[slot_of[pos]].clone(), HitKind::Verbatim));
        }
        shared
            .counters
            .cache_misses
            .fetch_add(unique.len() as u64, Ordering::Relaxed);
    }
    let hits = hit_flags.iter().filter(|&&h| h).count() as u64;
    shared
        .counters
        .cache_hits
        .fetch_add(hits, Ordering::Relaxed);

    // Phase 3: per-job post-processing and fan-out.
    for ((job, slot), cache_hit) in batch.into_iter().zip(served).zip(hit_flags) {
        let (predictions, _) = slot.expect("every job resolved");
        let adders = match job.kind {
            AnalysisKind::Classify => None,
            AnalysisKind::ExtractAdders => {
                let mut adders = extract_from_predictions(&job.aig, &predictions);
                lsb_correction(&job.aig, &mut adders);
                Some(adders)
            }
        };
        let out = JobOutput {
            predictions,
            adders,
            cache_hit,
            latency_micros: job.submitted.elapsed().as_micros() as u64,
        };
        shared.counters.jobs.fetch_add(1, Ordering::Relaxed);
        let _ = job.tx.send(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora::{ModelDepth, ReasonerConfig, TrainConfig};
    use gamora_circuits::csa_multiplier;

    fn tiny_trained() -> GamoraReasoner {
        let m = csa_multiplier(3);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m.aig],
            &TrainConfig {
                epochs: 15,
                log_every: 0,
                ..TrainConfig::default()
            },
        );
        reasoner
    }

    #[test]
    fn served_predictions_match_in_process() {
        let reasoner = tiny_trained();
        let subject = csa_multiplier(4);
        let expected = reasoner.predict(&subject.aig);

        let server = Server::start(reasoner, ServeConfig::default());
        let out = server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .wait()
            .expect("job answered");
        assert!(!out.cache_hit);
        assert_eq!(out.predictions.root_leaf, expected.root_leaf);
        assert_eq!(out.predictions.is_xor, expected.is_xor);
        assert_eq!(out.predictions.is_maj, expected.is_maj);
        assert!(out.adders.is_none());
    }

    #[test]
    fn repeat_submission_is_a_cache_hit_with_no_extra_forward() {
        let server = Server::start(tiny_trained(), ServeConfig::default());
        let subject = csa_multiplier(4);
        let first = server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .wait()
            .expect("job answered");
        assert!(!first.cache_hit);
        let passes_after_first = server.stats().forward_passes;
        assert_eq!(passes_after_first, 1);

        let second = server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .wait()
            .expect("job answered");
        assert!(
            second.cache_hit,
            "repeat submission must be served from cache"
        );
        assert_eq!(second.predictions.root_leaf, first.predictions.root_leaf);
        let stats = server.shutdown();
        assert_eq!(
            stats.forward_passes, passes_after_first,
            "cache hit must not run the model"
        );
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.jobs, 2);
    }

    #[test]
    fn extraction_jobs_return_postprocessed_adders() {
        let server = Server::start(tiny_trained(), ServeConfig::default());
        let subject = csa_multiplier(4);
        let out = server
            .submit(subject.aig.clone(), AnalysisKind::ExtractAdders)
            .wait()
            .expect("job answered");
        let adders = out.adders.expect("extraction requested");
        assert!(!adders.is_empty(), "a 4-bit CSA multiplier contains adders");
    }

    #[test]
    fn distinct_graphs_coalesce_into_one_batch() {
        // One worker + a pre-filled queue: all jobs land in one batch and
        // therefore one forward pass.
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 16,
                workers: 1,
                cache_capacity: 16,
            },
        );
        let jobs: Vec<(gamora_aig::Aig, AnalysisKind)> = (2..6usize)
            .map(|b| (csa_multiplier(b).aig, AnalysisKind::Classify))
            .collect();
        let outs = server.submit_all(jobs).expect("all jobs answered");
        assert_eq!(outs.len(), 4);
        let stats = server.shutdown();
        assert_eq!(stats.jobs, 4);
        assert_eq!(
            stats.forward_passes, 1,
            "an atomic burst under one idle worker coalesces into one pass"
        );
    }

    #[test]
    fn duplicate_submissions_in_one_burst_share_a_forward_slot() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 8,
                workers: 1,
                cache_capacity: 8,
            },
        );
        let aig = csa_multiplier(3).aig;
        let outs = server
            .submit_all(vec![
                (aig.clone(), AnalysisKind::Classify),
                (aig.clone(), AnalysisKind::Classify),
                (aig.clone(), AnalysisKind::Classify),
            ])
            .expect("all jobs answered");
        assert_eq!(outs[0].predictions.root_leaf, outs[1].predictions.root_leaf);
        assert!(!outs[0].cache_hit);
        assert!(outs[1].cache_hit && outs[2].cache_hit);
        let stats = server.shutdown();
        assert_eq!(stats.forward_passes, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn zero_cache_capacity_disables_all_structural_reuse() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 1,
                workers: 1,
                cache_capacity: 0,
            },
        );
        let aig = csa_multiplier(3).aig;
        let a = server
            .submit(aig.clone(), AnalysisKind::Classify)
            .wait()
            .expect("job answered");
        let b = server
            .submit(aig.clone(), AnalysisKind::Classify)
            .wait()
            .expect("job answered");
        assert!(!a.cache_hit && !b.cache_hit);
        let stats = server.shutdown();
        assert_eq!(
            stats.forward_passes, 2,
            "cold mode must run the model per job"
        );
        assert_eq!(stats.cache_hits, 0);
    }

    /// Determinism under concurrency: N workers sharing one `Arc`'d model
    /// (cache off, so every job really runs a forward pass) produce
    /// predictions bit-identical to single-threaded `predict` calls over
    /// the same submission set.
    #[test]
    fn shared_model_concurrent_workers_match_single_threaded() {
        let reasoner = Arc::new(tiny_trained());
        let subjects: Vec<gamora_aig::Aig> = (2..6usize).map(|b| csa_multiplier(b).aig).collect();
        let expected: Vec<Predictions> = subjects.iter().map(|a| reasoner.predict(a)).collect();

        let server = Server::start_shared(
            Arc::clone(&reasoner),
            ServeConfig {
                max_batch: 2,
                workers: 4,
                cache_capacity: 0,
            },
        );
        let jobs: Vec<(gamora_aig::Aig, AnalysisKind)> = (0..16usize)
            .map(|i| (subjects[i % subjects.len()].clone(), AnalysisKind::Classify))
            .collect();
        let outs = server.submit_all(jobs).expect("all jobs answered");
        for (i, out) in outs.iter().enumerate() {
            let exp = &expected[i % subjects.len()];
            assert_eq!(out.predictions.root_leaf, exp.root_leaf, "job {i}");
            assert_eq!(out.predictions.is_xor, exp.is_xor, "job {i}");
            assert_eq!(out.predictions.is_maj, exp.is_maj, "job {i}");
        }
        let stats = server.shutdown();
        assert_eq!(stats.jobs, 16);
        // The original Arc is still usable — the server never cloned the
        // model, only the handle.
        assert_eq!(Arc::strong_count(&reasoner), 1);
    }

    /// A job the server drops (worker gone before answering) surfaces as
    /// a `ServeError` instead of panicking the client thread.
    #[test]
    fn dropped_job_is_an_error_not_a_panic() {
        let (tx, rx) = mpsc::channel::<JobOutput>();
        drop(tx); // the serving side dies without answering
        let ticket = JobTicket { rx };
        assert_eq!(ticket.wait().unwrap_err(), ServeError::JobDropped);
    }

    #[test]
    fn worker_pool_answers_everything_under_contention() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 4,
                workers: 3,
                cache_capacity: 8,
            },
        );
        // 3 distinct graphs, resubmitted 4x each.
        let jobs: Vec<(gamora_aig::Aig, AnalysisKind)> = (0..12usize)
            .map(|i| (csa_multiplier(2 + i % 3).aig, AnalysisKind::Classify))
            .collect();
        let outs = server.submit_all(jobs).expect("all jobs answered");
        assert_eq!(outs.len(), 12);
        let stats = server.shutdown();
        assert_eq!(stats.jobs, 12);
        assert_eq!(stats.cache_hits + stats.cache_misses, 12);
        assert!(stats.cache_misses >= 3, "three distinct graphs");
    }
}
