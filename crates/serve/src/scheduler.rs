//! Micro-batching worker-pool scheduler with a bounded, deadline-aware
//! ingress.
//!
//! Jobs (an AIG plus the requested analysis) are submitted from any thread
//! and answered through per-job channels. Worker threads drain the shared
//! queue in batches of up to `max_batch`, answer what they can from the
//! structural-hash [`PredictionCache`], coalesce the remaining misses into
//! **one** GNN forward pass via [`GamoraReasoner::predict_batch_into`],
//! then fan the results back out — the serving analogue of the paper's
//! Figure 8 batched inference.
//!
//! The ingress is hardened for overload:
//!
//! * **Bounded queue.** The submission queue holds at most
//!   [`ServeConfig::queue_capacity`] jobs. [`Server::try_submit`] rejects
//!   with [`SubmitError::Overloaded`] instead of growing memory;
//!   [`Server::submit`] blocks on a capacity condvar until a worker frees
//!   space. A burst can therefore never inflate the server beyond
//!   `queue_capacity` queued AIGs.
//! * **Linger window.** A worker that finds fewer than `max_batch` jobs
//!   waits up to [`ServeConfig::linger_micros`] (via
//!   `Condvar::wait_timeout`) for companions before running a short
//!   batch, so trickling arrival rates still form real batches instead of
//!   degenerating to size-1 forward passes.
//! * **Deadlines.** [`Server::submit_within`] attaches a time-to-live;
//!   workers reject already-expired jobs with
//!   [`ServeError::DeadlineExpired`] *before* hashing or running the
//!   model, so a backed-up server does not burn forward passes on answers
//!   nobody is waiting for.
//! * **Shutdown is observed under the queue lock.** Once
//!   [`Server::begin_shutdown`] (or drop/`shutdown`) flips the flag, every
//!   `submit` variant fails fast with [`SubmitError::ShuttingDown`] — a
//!   job can never be enqueued into a queue no worker will drain.
//!
//! The serve loop is also **self-healing** (PR 8):
//!
//! * **Worker supervision.** A batch panic kills its worker thread (a
//!   fresh thread is strictly safer than one whose scratch may be
//!   half-written); a supervisor thread detects the death and respawns
//!   the worker with a fresh [`WorkerState`], reusing the `Arc`'d model.
//!   Respawns are counted in `workers_respawned`.
//! * **Poison quarantine.** A structural fingerprint present in two
//!   panicking batches is quarantined for
//!   [`ServeConfig::quarantine_ttl_micros`]: further submissions of it
//!   are answered [`ServeError::AnalysisFailed`] without touching the
//!   model, so one pathological netlist costs a couple of batches, not
//!   the fleet's throughput. (Attribution is batch-level: innocent
//!   companions of a poison job can collect a strike; the TTL bounds the
//!   damage.)
//! * **Health.** [`Server::health`] derives `Healthy`/`Degraded`/
//!   `ShuttingDown` from the shutdown flag, active quarantines, and the
//!   recency of incidents (sheds, panics, respawns).
//!
//! Every stage checks a deterministic fail point (`gamora-fault`), so
//! chaos tests can provoke each of these paths on demand; disarmed, each
//! check is one relaxed atomic load (guarded by the `fault_overhead`
//! test).
//!
//! Built on `std::thread` + `std::sync::mpsc` channels only (the same
//! no-external-runtime discipline as `gamora_gnn::parallel`). The server
//! holds exactly **one** trained reasoner behind an [`Arc`]; inference is
//! `&self`, so every worker shares those weights read-only and carries
//! only private scratch: an [`InferenceScratch`] (preallocated forward
//! buffers) plus a [`BatchScratch`] (reusable merged batch graph,
//! features and predictions) and a recycled per-job output vector. A
//! warmed-up worker therefore runs the whole miss path — graph
//! construction, feature encoding, batch assembly and the forward pass —
//! without heap allocation. Forward passes never contend on a lock, and
//! memory scales with worker count only by the scratch size, not by the
//! model size.
//!
//! For multi-shard serving (one ingress per cache) see
//! [`ShardRouter`](crate::router::ShardRouter).

use crate::cache::{
    pack_prediction, unpack_prediction, CacheEntry, ConeCache, ConeState, GraphSignature, HitKind,
    PredictionCache,
};
use crate::metrics::ServeMetrics;
use gamora::{
    extract_from_predictions, lsb_correction, BatchScratch, GamoraReasoner, InferenceScratch,
    Predictions,
};
use gamora_aig::hasher::FxHashMap;
use gamora_aig::Aig;
use gamora_exact::ExtractedAdder;
use gamora_fault::FaultPoint;
use gamora_obs::{Registry, Snapshot, StageTimer};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which analysis a job requests.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum AnalysisKind {
    /// Per-node classification only (tasks 1–3).
    #[default]
    Classify,
    /// Classification plus adder-tree extraction with the paper's LSB
    /// post-processing.
    ExtractAdders,
    /// Test-only: panics during post-processing, after any preceding jobs
    /// in the batch have been answered — exercises the partial-batch drop
    /// accounting without a pathological netlist.
    #[cfg(test)]
    PanicForTest,
    /// Test-only: sleeps 300ms in post-processing, keeping the worker
    /// provably busy for a window far wider than any scheduler stall —
    /// the deterministic stand-in for a long forward pass in
    /// timing-sensitive ingress tests.
    #[cfg(test)]
    SleepForTest,
}

/// Scheduler configuration.
#[derive(Copy, Clone, Debug)]
pub struct ServeConfig {
    /// Maximum jobs coalesced into one forward pass.
    pub max_batch: usize,
    /// Inference worker threads (each carries only a scratch workspace;
    /// the model itself is shared).
    pub workers: usize,
    /// Capacity of the structural-hash prediction cache, in graphs.
    /// `0` disables every structural-hash shortcut — cache lookups *and*
    /// intra-batch duplicate coalescing — so each job pays a full model
    /// slot (the cold-path throughput benchmark).
    pub cache_capacity: usize,
    /// Maximum queued (admitted but not yet claimed) jobs. `0` means
    /// unbounded. When full, [`Server::try_submit`] fails with
    /// [`SubmitError::Overloaded`] and [`Server::submit`] blocks until a
    /// worker drains the queue.
    pub queue_capacity: usize,
    /// How long a worker holding a short batch waits for more jobs before
    /// running it, in microseconds. `0` is fully greedy (run whatever is
    /// there). A full batch never waits.
    pub linger_micros: u64,
    /// Record per-layer GNN forward timings (`forward_layer_*_micros`
    /// histograms). Off by default: the coarse stage histograms are always
    /// on and effectively free, while per-layer timing adds two clock
    /// reads per layer per forward pass — still cheap, but opt-in so the
    /// default hot path stays minimal.
    pub layer_timing: bool,
    /// Intra-subject parallelism budget per worker: the number of threads
    /// each worker's kernel and assembly calls may fan out over
    /// (million-node subjects parallelise CSR assembly, feature encoding,
    /// aggregation, and GEMM row blocks). `0` (the default) divides the
    /// machine's thread budget — `GAMORA_THREADS` if set, detected cores
    /// otherwise — evenly across `workers`, so worker-level and
    /// intra-subject parallelism never oversubscribe the machine. `1`
    /// forces fully serial kernels per worker.
    pub intra_threads: usize,
    /// How long a poisoned fingerprint (two batch panics) stays
    /// quarantined, in microseconds. While quarantined, submissions of
    /// that fingerprint are answered [`ServeError::AnalysisFailed`]
    /// without running the model. Quarantine needs structural hashing
    /// (`cache_capacity > 0`); in cold mode no fingerprints exist, so
    /// nothing is ever quarantined.
    pub quarantine_ttl_micros: u64,
    /// Capacity of the cone-level prediction cache tier, in *node*
    /// predictions across all subjects (a 16-bit multiplier is ~1.5k
    /// nodes). `0` (the default) disables the tier: whole-graph misses
    /// run the plain full forward pass, exactly as before this tier
    /// existed. When enabled, whole-graph misses compute canonical
    /// per-cone keys, serve rows whose cone was seen before straight from
    /// the cache, and push only the remaining rows through the shared
    /// linear + heads (the SAGE trunk always runs on the full merged
    /// graph — message passing cannot skip rows).
    pub cone_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            workers: 1,
            cache_capacity: 256,
            queue_capacity: 1024,
            linger_micros: 200,
            layer_timing: false,
            intra_threads: 0,
            quarantine_ttl_micros: 5_000_000,
            cone_capacity: 0,
        }
    }
}

/// A completed job.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// Per-node predictions for the submitted AIG.
    pub predictions: Predictions,
    /// Extracted adders (present iff [`AnalysisKind::ExtractAdders`]).
    pub adders: Option<Vec<ExtractedAdder>>,
    /// Whether the predictions came from the structural-hash cache.
    pub cache_hit: bool,
    /// Wall time from submission to completion, in microseconds.
    pub latency_micros: u64,
}

/// Why a submission was refused at the door (the job never entered the
/// queue; nothing was enqueued and no ticket exists).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity ([`Server::try_submit`] only;
    /// blocking submits wait instead). Back off and retry, or treat as
    /// load shedding.
    Overloaded,
    /// Shutdown has begun; no worker will ever drain a new job. Observed
    /// under the queue lock, so this cannot race with the workers exiting.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "serve queue at capacity; submission rejected"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down; submission rejected"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *admitted* job was not answered with predictions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server dropped the job without answering it — a worker panic,
    /// or a shutdown racing the submission. The job may or may not have
    /// run; resubmit against a live server.
    JobDropped,
    /// The job's deadline passed before a worker reached it; it was
    /// rejected without running the model.
    DeadlineExpired,
    /// [`JobTicket::wait_timeout`] gave up waiting. The job is still
    /// queued or running and may complete later.
    WaitTimeout,
    /// The analysis could not be produced: the job's fingerprint is
    /// quarantined after repeated batch panics, or a serve stage failed
    /// (an injected stage error in chaos runs). Unlike
    /// [`ServeError::JobDropped`] this is a *definitive* answer —
    /// resubmitting the same netlist before the quarantine TTL lapses
    /// fails again.
    AnalysisFailed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::JobDropped => write!(f, "serve worker dropped the job before answering"),
            ServeError::DeadlineExpired => {
                write!(f, "job deadline expired before a worker reached it")
            }
            ServeError::WaitTimeout => write!(f, "timed out waiting for the job to complete"),
            ServeError::AnalysisFailed => {
                write!(f, "analysis failed (stage error or quarantined submission)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Receiving side of a submitted job.
#[derive(Debug)]
pub struct JobTicket {
    rx: mpsc::Receiver<Result<JobOutput, ServeError>>,
}

impl JobTicket {
    /// Blocks until the job completes.
    ///
    /// Returns [`ServeError::JobDropped`] instead of panicking when the
    /// server died or shut down before answering, so a draining server
    /// fails jobs gracefully; [`ServeError::DeadlineExpired`] when the
    /// job's deadline passed unserved.
    pub fn wait(self) -> Result<JobOutput, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::JobDropped),
        }
    }

    /// Like [`JobTicket::wait`], but gives up after `timeout` with
    /// [`ServeError::WaitTimeout`] — no client ever has to block forever
    /// on a wedged server. The ticket stays valid: the caller can keep
    /// waiting with another call.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<JobOutput, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::WaitTimeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::JobDropped),
        }
    }
}

pub(crate) struct Job {
    pub(crate) aig: Aig,
    pub(crate) kind: AnalysisKind,
    /// Structural signature precomputed by the router (or a previous
    /// phase); workers compute it on demand otherwise.
    pub(crate) sig: Option<GraphSignature>,
    pub(crate) deadline: Option<Instant>,
    pub(crate) submitted: Instant,
    /// When the job entered the queue (stamped by `admit`); together with
    /// `submitted` this splits end-to-end latency into admission wait vs
    /// queue wait. Initialised to `submitted` by constructors.
    pub(crate) admitted: Instant,
    /// Bulk-submission id (`0` = single submit): lets a burst aborted by
    /// shutdown retract its own still-queued jobs instead of leaving them
    /// to burn forward passes into dropped receivers.
    pub(crate) burst: u64,
    pub(crate) tx: mpsc::Sender<Result<JobOutput, ServeError>>,
}

/// Server health, derived from the failure counters (see
/// [`Server::health`]). Ordered by severity so multi-shard views can
/// take the worst (`max`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Health {
    /// No shutdown, no active quarantine, no recent incident.
    #[default]
    Healthy = 0,
    /// A fingerprint is quarantined, or an incident (overload shed,
    /// batch panic, worker respawn) happened within the last
    /// [`INCIDENT_WINDOW`]. The server still serves.
    Degraded = 1,
    /// Shutdown has begun; new submissions fail fast.
    ShuttingDown = 2,
}

impl Health {
    /// Stable lowercase name (used in bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::ShuttingDown => "shutting_down",
        }
    }
}

/// How long after the last incident (shed, panic, respawn, failed job)
/// a server still reports [`Health::Degraded`].
pub const INCIDENT_WINDOW: Duration = Duration::from_millis(500);

/// A point-in-time snapshot of server counters.
///
/// Completion accounting is exact: every admitted job is eventually
/// counted in exactly one of `jobs` (answered), `jobs_expired` (deadline
/// rejection), `jobs_failed` (quarantined / stage-failed, answered
/// [`ServeError::AnalysisFailed`]) or `jobs_dropped` (batch panic /
/// shutdown), so after a drained shutdown
/// `jobs_submitted == jobs + jobs_expired + jobs_failed + jobs_dropped`
/// and `jobs == cache_hits + cache_misses`. Retried submissions (see
/// [`ShardRouter::submit_all_retrying`](crate::router::ShardRouter::submit_all_retrying))
/// count as fresh submissions, so the identity holds under retry too.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Jobs admitted into the queue (tickets issued).
    pub jobs_submitted: u64,
    /// Jobs completed (an answer was produced and sent).
    pub jobs: u64,
    /// Batches executed with at least one live job (cache-only batches
    /// included).
    pub batches: u64,
    /// GNN forward passes run (one per batch with at least one miss).
    pub forward_passes: u64,
    /// Completed jobs answered from the cache (or a coalesced duplicate).
    pub cache_hits: u64,
    /// Completed jobs that needed the model.
    pub cache_misses: u64,
    /// Admitted jobs dropped unanswered (batch panic, or still queued at
    /// shutdown).
    pub jobs_dropped: u64,
    /// Admitted jobs rejected because their deadline expired before a
    /// worker reached them (no forward pass was spent).
    pub jobs_expired: u64,
    /// Admitted jobs answered [`ServeError::AnalysisFailed`]
    /// (quarantined fingerprints, injected stage errors).
    pub jobs_failed: u64,
    /// `try_submit` calls refused at the door with
    /// [`SubmitError::Overloaded`] (these never count as submitted).
    pub rejected_overload: u64,
    /// Dead worker threads respawned by the supervisor.
    pub workers_respawned: u64,
    /// Fingerprints quarantined after repeated batch panics.
    pub quarantines: u64,
    /// Resubmissions performed by the retrying router entry point
    /// (always `0` for a bare [`Server`]; filled in by
    /// [`ShardRouter::stats`](crate::router::ShardRouter::stats)).
    pub retries: u64,
    /// High-water mark of the queue depth (bounded by `queue_capacity`
    /// when one is set).
    pub peak_queued: u64,
    /// Health at snapshot time (multi-shard merges keep the worst).
    pub health: Health,
}

impl ServeStats {
    /// Accumulates another shard's counters into this one (peak depth
    /// takes the max; everything else sums).
    pub fn merge(&mut self, other: &ServeStats) {
        self.jobs_submitted += other.jobs_submitted;
        self.jobs += other.jobs;
        self.batches += other.batches;
        self.forward_passes += other.forward_passes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.jobs_dropped += other.jobs_dropped;
        self.jobs_expired += other.jobs_expired;
        self.jobs_failed += other.jobs_failed;
        self.rejected_overload += other.rejected_overload;
        self.workers_respawned += other.workers_respawned;
        self.quarantines += other.quarantines;
        self.retries += other.retries;
        self.peak_queued = self.peak_queued.max(other.peak_queued);
        self.health = self.health.max(other.health);
    }
}

/// Queue state guarded by one mutex: the jobs *and* the shutdown flag, so
/// admission decisions and shutdown can never race.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Strike record of a fingerprint seen in panicking batches.
struct QuarantineEntry {
    strikes: u32,
    /// `Some(deadline)` once quarantined; `None` while accumulating
    /// strikes.
    until: Option<Instant>,
    /// Last strike time — lets stale strike-only entries be purged so
    /// the map cannot grow without bound under sustained chaos.
    last_strike: Instant,
}

/// Batch panics before a fingerprint is quarantined.
const QUARANTINE_STRIKES: u32 = 2;

/// Supervisor-facing lifecycle state: indices of workers that died by
/// panic (pushed by their [`DeathNotice`] guards) plus the stop flag.
struct Lifecycle {
    dead: Vec<usize>,
    stop: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when jobs arrive (workers wait here).
    available: Condvar,
    /// Signalled when queue space frees up (blocked submitters wait here).
    space: Condvar,
    /// Allocator for [`Job::burst`] ids (`0` is reserved for singles).
    burst_counter: AtomicU64,
    /// `None` when caching is disabled (`cache_capacity == 0`).
    cache: Mutex<Option<PredictionCache>>,
    /// The cone-level tier; `None` when disabled (`cone_capacity == 0`).
    cone: Mutex<Option<ConeCache>>,
    /// Whether the cone tier is on (`cone_capacity > 0`); lets the batch
    /// path pick the one-shot predict without touching the cone lock.
    cone_enabled: bool,
    /// Whether structural-hash shortcuts (cache + intra-batch dedup) are on.
    hashing_enabled: bool,
    /// Every counter/gauge/histogram the serve path records into. The
    /// handles are `Arc`s into `registry`; recording is wait-free.
    metrics: ServeMetrics,
    /// Owns the metric storage; immutable after construction, snapshotted
    /// by [`Server::metrics`].
    registry: Registry,
    max_batch: usize,
    /// `0` = unbounded.
    queue_capacity: usize,
    linger: Duration,
    /// Server start time; incident timestamps are micros since this.
    started: Instant,
    /// Micros-since-start of the last incident **plus one** (`0` = no
    /// incident yet). Drives the `Degraded` health window.
    last_incident: AtomicU64,
    /// Fingerprint strike/quarantine records (see [`QuarantineEntry`]).
    quarantine: Mutex<FxHashMap<u64, QuarantineEntry>>,
    /// Number of *quarantined* (not merely struck) fingerprints; lets
    /// the batch path skip the quarantine lock entirely when zero.
    quarantine_active: AtomicU64,
    quarantine_ttl: Duration,
    /// Dead-worker inbox + stop flag for the supervisor.
    lifecycle: Mutex<Lifecycle>,
    /// Signalled when a worker dies or shutdown begins.
    reaper: Condvar,
}

impl Shared {
    /// Stamps "something went wrong just now" for the health window.
    fn note_incident(&self) {
        let micros = self.started.elapsed().as_micros() as u64;
        self.last_incident.store(micros + 1, Ordering::Relaxed);
    }

    /// Whether an incident occurred within [`INCIDENT_WINDOW`].
    fn recent_incident(&self) -> bool {
        match self.last_incident.load(Ordering::Relaxed) {
            0 => false,
            stamp => {
                let now = self.started.elapsed().as_micros() as u64;
                now.saturating_sub(stamp - 1) <= INCIDENT_WINDOW.as_micros() as u64
            }
        }
    }

    /// Drops expired quarantine records and stale strike-only records,
    /// keeping `quarantine_active` in sync. Caller holds the map lock.
    fn purge_quarantine(&self, map: &mut FxHashMap<u64, QuarantineEntry>, now: Instant) {
        let ttl = self.quarantine_ttl;
        let mut released = 0u64;
        map.retain(|_, e| match e.until {
            Some(until) if now >= until => {
                released += 1;
                false
            }
            Some(_) => true,
            None => now.saturating_duration_since(e.last_strike) < ttl,
        });
        if released > 0 {
            self.quarantine_active
                .fetch_sub(released, Ordering::Relaxed);
        }
    }

    /// Records one strike against every distinct fingerprint of a
    /// panicked batch; fingerprints reaching [`QUARANTINE_STRIKES`] are
    /// quarantined for the TTL.
    fn strike_fingerprints(&self, fps: &[u64]) {
        if fps.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut map = self.quarantine.lock().expect("quarantine poisoned");
        self.purge_quarantine(&mut map, now);
        let mut seen: Vec<u64> = Vec::with_capacity(fps.len());
        for &fp in fps {
            if seen.contains(&fp) {
                continue;
            }
            seen.push(fp);
            let e = map.entry(fp).or_insert(QuarantineEntry {
                strikes: 0,
                until: None,
                last_strike: now,
            });
            e.strikes += 1;
            e.last_strike = now;
            if e.strikes >= QUARANTINE_STRIKES && e.until.is_none() {
                e.until = Some(now + self.quarantine_ttl);
                self.quarantine_active.fetch_add(1, Ordering::Relaxed);
                self.metrics.quarantines.inc();
                self.note_incident();
            }
        }
    }
}

/// A running inference server over one trained reasoner.
pub struct Server {
    shared: Arc<Shared>,
    /// The supervisor owns the worker handles; joining it joins (the
    /// final generation of) every worker.
    supervisor: Option<JoinHandle<()>>,
}

/// Drop guard armed inside every worker thread: if the thread unwinds
/// (a batch panic re-raised after accounting), the guard reports the
/// worker index to the supervisor so it can join and respawn it. A
/// normal shutdown exit does not report (nothing to heal).
struct DeathNotice {
    shared: Arc<Shared>,
    index: usize,
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut lc = self.shared.lifecycle.lock().expect("lifecycle poisoned");
            lc.dead.push(self.index);
            drop(lc);
            self.shared.reaper.notify_all();
        }
    }
}

/// Spawns worker `index` over the shared state; used at startup and by
/// the supervisor when respawning a dead worker (fresh scratch, same
/// `Arc`'d model).
fn spawn_worker(
    shared: &Arc<Shared>,
    model: &Arc<GamoraReasoner>,
    intra_threads: usize,
    index: usize,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let model = Arc::clone(model);
    std::thread::Builder::new()
        .name(format!("gamora-serve-{index}"))
        .spawn(move || {
            gamora_gnn::parallel::set_intra_threads(intra_threads);
            let death_notice = DeathNotice {
                shared: Arc::clone(&shared),
                index,
            };
            let mut state = WorkerState {
                scratch: model.scratch(),
                batch_ws: model.batch_scratch(),
                outs: Vec::new(),
                cone: ConeState::default(),
                batch_fps: Vec::new(),
            };
            worker_loop(&shared, &model, &mut state);
            drop(death_notice);
        })
        .expect("spawn serve worker")
}

/// The supervisor thread: waits for death notices, joins dead workers,
/// and respawns them into the same slot (unless shutdown has begun).
/// On stop it joins every remaining worker before exiting, so joining
/// the supervisor is joining the pool.
fn supervisor_loop(
    shared: Arc<Shared>,
    model: Arc<GamoraReasoner>,
    intra_threads: usize,
    mut slots: Vec<Option<JoinHandle<()>>>,
) {
    loop {
        let (dead, stop) = {
            let mut lc = shared.lifecycle.lock().expect("lifecycle poisoned");
            while lc.dead.is_empty() && !lc.stop {
                lc = shared.reaper.wait(lc).expect("lifecycle poisoned");
            }
            (std::mem::take(&mut lc.dead), lc.stop)
        };
        // Join (and maybe respawn) outside the lock: the dying worker's
        // DeathNotice needs it, and a respawned worker may die again
        // while we are still working through this list.
        for index in dead {
            if let Some(handle) = slots[index].take() {
                let _ = handle.join();
            }
            if !stop {
                slots[index] = Some(spawn_worker(&shared, &model, intra_threads, index));
                shared.metrics.workers_respawned.inc();
                shared.note_incident();
            }
        }
        if stop {
            for handle in slots.iter_mut().filter_map(Option::take) {
                let _ = handle.join();
            }
            return;
        }
    }
}

impl Server {
    /// Starts the worker pool over an owned reasoner (wraps it in an
    /// [`Arc`] and delegates to [`Server::start_shared`]).
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.workers` is zero.
    pub fn start(reasoner: GamoraReasoner, config: ServeConfig) -> Server {
        Server::start_shared(Arc::new(reasoner), config)
    }

    /// Starts the worker pool over an already-shared reasoner. The server
    /// holds exactly this one model; every worker borrows it through the
    /// `Arc` and owns nothing but a private scratch workspace, so callers
    /// can keep using (or serve elsewhere) the same instance concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.workers` is zero.
    pub fn start_shared(reasoner: Arc<GamoraReasoner>, config: ServeConfig) -> Server {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.workers > 0, "at least one worker");
        let mut registry = Registry::new();
        let metrics = ServeMetrics::register(
            &mut registry,
            config.layer_timing.then(|| reasoner.num_layers()),
        );
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            burst_counter: AtomicU64::new(1),
            cache: Mutex::new(
                (config.cache_capacity > 0).then(|| PredictionCache::new(config.cache_capacity)),
            ),
            cone: Mutex::new(
                (config.cone_capacity > 0).then(|| ConeCache::new(config.cone_capacity)),
            ),
            cone_enabled: config.cone_capacity > 0,
            hashing_enabled: config.cache_capacity > 0,
            metrics,
            registry,
            max_batch: config.max_batch,
            queue_capacity: config.queue_capacity,
            linger: Duration::from_micros(config.linger_micros),
            started: Instant::now(),
            last_incident: AtomicU64::new(0),
            quarantine: Mutex::new(FxHashMap::default()),
            quarantine_active: AtomicU64::new(0),
            quarantine_ttl: Duration::from_micros(config.quarantine_ttl_micros),
            lifecycle: Mutex::new(Lifecycle {
                dead: Vec::new(),
                stop: false,
            }),
            reaper: Condvar::new(),
        });
        // Split the machine's thread budget across the pool: N workers
        // each fanning kernels over the full core count would oversubscribe
        // quadratically under load.
        let intra_threads = if config.intra_threads > 0 {
            config.intra_threads
        } else {
            (gamora_gnn::parallel::num_threads() / config.workers).max(1)
        };
        let slots: Vec<Option<JoinHandle<()>>> = (0..config.workers)
            .map(|i| Some(spawn_worker(&shared, &reasoner, intra_threads, i)))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gamora-serve-supervisor".into())
                .spawn(move || supervisor_loop(shared, reasoner, intra_threads, slots))
                .expect("spawn serve supervisor")
        };
        Server {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Records how long loading the model snapshot took, as the
    /// `stage_snapshot_load_micros` cold-start stage. The server cannot
    /// observe the load itself (it receives an already-built reasoner),
    /// so the loading caller reports it once here and the value then
    /// flows through the same stage table, JSON reports and Prometheus
    /// text as the per-job stages.
    pub fn record_snapshot_load(&self, micros: u64) {
        self.shared.metrics.stage_snapshot_load.record(micros);
    }

    /// Enqueues a job, blocking while the queue is at capacity; returns a
    /// ticket to wait on. Fails fast with [`SubmitError::ShuttingDown`]
    /// once shutdown has begun.
    pub fn submit(&self, aig: Aig, kind: AnalysisKind) -> Result<JobTicket, SubmitError> {
        self.submit_routed(aig, kind, None, None, true)
    }

    /// Non-blocking admission: enqueues the job if there is queue space,
    /// otherwise fails immediately with [`SubmitError::Overloaded`] —
    /// the load-shedding entry point; memory stays bounded no matter how
    /// hard clients hammer.
    pub fn try_submit(&self, aig: Aig, kind: AnalysisKind) -> Result<JobTicket, SubmitError> {
        self.submit_routed(aig, kind, None, None, false)
    }

    /// Like [`Server::submit`], but the job carries a deadline `ttl` from
    /// now: a worker that reaches it later rejects it with
    /// [`ServeError::DeadlineExpired`] instead of spending a forward pass
    /// on an answer nobody is waiting for.
    pub fn submit_within(
        &self,
        aig: Aig,
        kind: AnalysisKind,
        ttl: Duration,
    ) -> Result<JobTicket, SubmitError> {
        let deadline = Instant::now() + ttl;
        self.submit_routed(aig, kind, None, Some(deadline), true)
    }

    /// Non-blocking admission with a deadline: [`Server::try_submit`]
    /// semantics plus a time-to-live, the combination a saturating
    /// ingress uses.
    pub fn try_submit_within(
        &self,
        aig: Aig,
        kind: AnalysisKind,
        ttl: Duration,
    ) -> Result<JobTicket, SubmitError> {
        let deadline = Instant::now() + ttl;
        self.submit_routed(aig, kind, None, Some(deadline), false)
    }

    /// The full-control internal entry point; the router uses it to pass
    /// along the structural signature it already computed (workers then
    /// skip the O(nodes) hash passes).
    pub(crate) fn submit_routed(
        &self,
        aig: Aig,
        kind: AnalysisKind,
        sig: Option<GraphSignature>,
        deadline: Option<Instant>,
        block: bool,
    ) -> Result<JobTicket, SubmitError> {
        let timer = StageTimer::start();
        let (tx, rx) = mpsc::channel();
        let submitted = Instant::now();
        let job = Job {
            aig,
            kind,
            sig,
            deadline,
            submitted,
            admitted: submitted,
            burst: 0,
            tx,
        };
        let m = &self.shared.metrics;
        // Chaos seam: an injected admission fault sheds the submission at
        // the door, before the queue lock (so a `panic` action can never
        // poison the queue mutex).
        if gamora_fault::armed() && admission_fault_fires() {
            m.rejected_overload.inc();
            timer.observe(&m.stage_time_to_rejection);
            self.shared.note_incident();
            return Err(SubmitError::Overloaded);
        }
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        loop {
            if queue.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if self.shared.queue_capacity == 0 || queue.jobs.len() < self.shared.queue_capacity {
                break;
            }
            if !block {
                m.rejected_overload.inc();
                timer.observe(&m.stage_time_to_rejection);
                return Err(SubmitError::Overloaded);
            }
            // A blocking submit with a deadline never waits past it: once
            // the ttl elapses with the queue still full, the job is shed
            // at the door — admitting it would only buy a guaranteed
            // `DeadlineExpired` after occupying a queue slot.
            queue = match job.deadline {
                Some(d) => {
                    let Some(left) = d.checked_duration_since(Instant::now()) else {
                        m.rejected_overload.inc();
                        timer.observe(&m.stage_time_to_rejection);
                        return Err(SubmitError::Overloaded);
                    };
                    self.shared
                        .space
                        .wait_timeout(queue, left)
                        .expect("queue poisoned")
                        .0
                }
                None => self.shared.space.wait(queue).expect("queue poisoned"),
            };
        }
        self.admit(&mut queue, job);
        drop(queue);
        timer.observe(&m.stage_admission);
        self.shared.available.notify_one();
        Ok(JobTicket { rx })
    }

    /// Pushes an admitted job and updates the admission metrics (the
    /// submitted counter, the queue-depth distribution and its high-water
    /// gauge). Caller holds the queue lock and has already checked
    /// capacity + shutdown; the caller also records `stage_admission`,
    /// which includes any blocking wait for queue space.
    fn admit(&self, queue: &mut QueueState, mut job: Job) {
        job.admitted = Instant::now();
        queue.jobs.push_back(job);
        let m = &self.shared.metrics;
        m.jobs_submitted.inc();
        m.queue_depth.record(queue.jobs.len() as u64);
        m.peak_queued.set_max(queue.jobs.len() as u64);
    }

    /// Submits many jobs under one queue lock (so an idle worker sees them
    /// as one coalescable burst) and waits for all of them, preserving
    /// input order. Bursts larger than the queue capacity are admitted in
    /// capacity-sized waves: the submitter blocks on the space condvar
    /// between waves, so memory stays bounded even for huge bulk calls.
    /// Fails with the first dropped job.
    pub fn submit_all(&self, jobs: Vec<(Aig, AnalysisKind)>) -> Result<Vec<JobOutput>, ServeError> {
        let (_, tickets) = self
            .submit_batch(jobs.into_iter().map(|(a, k)| (a, k, None)).collect())
            .map_err(|_| ServeError::JobDropped)?;
        tickets.into_iter().map(JobTicket::wait).collect()
    }

    /// Drops every still-queued job of a burst (counted as
    /// `jobs_dropped`), returning how many were removed. Used when a
    /// multi-shard bulk submission aborts after this server's burst was
    /// already admitted: the burst's receivers die with the caller's
    /// error return, so running the jobs would spend forward passes
    /// answering nobody. Jobs a worker already claimed still run.
    pub(crate) fn retract_burst(&self, burst: u64) -> u64 {
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        let retracted = Self::retract_burst_locked(&self.shared, &mut queue, burst);
        drop(queue);
        if retracted > 0 {
            // Freed slots: wake submitters blocked on capacity.
            self.shared.space.notify_all();
        }
        retracted
    }

    fn retract_burst_locked(shared: &Shared, queue: &mut QueueState, burst: u64) -> u64 {
        let before = queue.jobs.len();
        queue.jobs.retain(|j| j.burst != burst);
        let retracted = (before - queue.jobs.len()) as u64;
        shared.metrics.jobs_dropped.add(retracted);
        retracted
    }

    /// Bulk enqueue used by `submit_all` and the shard router; returns
    /// the burst id (for [`Server::retract_burst`]) with the tickets.
    ///
    /// A burst larger than the queue capacity can be interrupted by a
    /// shutdown at a wave boundary; the aborted burst then retracts its
    /// own still-queued prefix under the same lock (those jobs' receivers
    /// die with the error return, so running them would spend forward
    /// passes answering nobody) and counts the retracted jobs as dropped.
    pub(crate) fn submit_batch(
        &self,
        jobs: Vec<(Aig, AnalysisKind, Option<GraphSignature>)>,
    ) -> Result<(u64, Vec<JobTicket>), SubmitError> {
        let burst = self.shared.burst_counter.fetch_add(1, Ordering::Relaxed);
        // Chaos seam: a burst is admitted atomically, so the admission
        // fail point is checked once per burst — an injection rejects the
        // whole burst before anything is enqueued.
        if gamora_fault::armed() && admission_fault_fires() {
            self.shared.metrics.rejected_overload.inc();
            self.shared.note_incident();
            return Err(SubmitError::Overloaded);
        }
        let mut tickets = Vec::with_capacity(jobs.len());
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        for (aig, kind, sig) in jobs {
            let timer = StageTimer::start();
            loop {
                if queue.shutdown {
                    Self::retract_burst_locked(&self.shared, &mut queue, burst);
                    return Err(SubmitError::ShuttingDown);
                }
                if self.shared.queue_capacity == 0 || queue.jobs.len() < self.shared.queue_capacity
                {
                    break;
                }
                // Wake the workers on what is already queued, then wait
                // for them to free space.
                self.shared.available.notify_all();
                queue = self.shared.space.wait(queue).expect("queue poisoned");
            }
            let (tx, rx) = mpsc::channel();
            let submitted = Instant::now();
            self.admit(
                &mut queue,
                Job {
                    aig,
                    kind,
                    sig,
                    deadline: None,
                    submitted,
                    admitted: submitted,
                    burst,
                    tx,
                },
            );
            timer.observe(&self.shared.metrics.stage_admission);
            tickets.push(JobTicket { rx });
        }
        drop(queue);
        self.shared.available.notify_all();
        Ok((burst, tickets))
    }

    /// Current counter values, read from the same metric registrations
    /// [`Server::metrics`] snapshots — the two views can never diverge.
    pub fn stats(&self) -> ServeStats {
        let m = &self.shared.metrics;
        ServeStats {
            jobs_submitted: m.jobs_submitted.get(),
            jobs: m.jobs.get(),
            batches: m.batches.get(),
            forward_passes: m.forward_passes.get(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            jobs_dropped: m.jobs_dropped.get(),
            jobs_expired: m.jobs_expired.get(),
            jobs_failed: m.jobs_failed.get(),
            rejected_overload: m.rejected_overload.get(),
            workers_respawned: m.workers_respawned.get(),
            quarantines: m.quarantines.get(),
            retries: 0,
            peak_queued: m.peak_queued.get(),
            health: self.health(),
        }
    }

    /// Current health, derived from the failure state:
    ///
    /// * [`Health::ShuttingDown`] once [`Server::begin_shutdown`] ran;
    /// * [`Health::Degraded`] while any fingerprint is quarantined, or
    ///   within [`INCIDENT_WINDOW`] of the last incident (overload shed,
    ///   batch panic, worker respawn, failed job);
    /// * [`Health::Healthy`] otherwise.
    ///
    /// Each read refreshes the `serve_health` gauge (0/1/2), so metric
    /// snapshots report it too; gauges merge by max, so a fleet snapshot
    /// shows the worst shard.
    pub fn health(&self) -> Health {
        let h = self.compute_health();
        self.shared.metrics.health.set(h as u64);
        h
    }

    fn compute_health(&self) -> Health {
        if self.shared.queue.lock().expect("queue poisoned").shutdown {
            return Health::ShuttingDown;
        }
        if self.shared.quarantine_active.load(Ordering::Relaxed) > 0 {
            // Expired quarantines must lapse back to Healthy without
            // waiting for a batch to purge them.
            let mut map = self.shared.quarantine.lock().expect("quarantine poisoned");
            self.shared.purge_quarantine(&mut map, Instant::now());
            if self.shared.quarantine_active.load(Ordering::Relaxed) > 0 {
                return Health::Degraded;
            }
        }
        if self.shared.recent_incident() {
            return Health::Degraded;
        }
        Health::Healthy
    }

    /// A point-in-time snapshot of every serve metric: the counters behind
    /// [`Server::stats`], the per-stage latency histograms, the cache tier
    /// metrics, and (when [`ServeConfig::layer_timing`] is on) per-layer
    /// forward timings. Snapshots from multiple shards merge by name via
    /// [`Snapshot::merge`].
    pub fn metrics(&self) -> Snapshot {
        self.shared.registry.snapshot()
    }

    /// Begins a graceful shutdown without blocking: new submissions fail
    /// fast with [`SubmitError::ShuttingDown`], workers drain what is
    /// already queued and then exit. Call [`Server::shutdown`] (or drop
    /// the server) to join them.
    pub fn begin_shutdown(&self) {
        self.shared.queue.lock().expect("queue poisoned").shutdown = true;
        self.shared.available.notify_all();
        // Submitters blocked on capacity must wake to observe the flag.
        self.shared.space.notify_all();
        // Stop the supervisor from respawning: it joins the remaining
        // workers (drain first, then exit) and returns.
        self.shared
            .lifecycle
            .lock()
            .expect("lifecycle poisoned")
            .stop = true;
        self.shared.reaper.notify_all();
    }

    /// Drains outstanding work and stops the workers.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_workers();
        self.stats()
    }

    fn stop_workers(&mut self) {
        self.begin_shutdown();
        // The supervisor joins every worker before exiting, so joining it
        // joins the whole (current generation of the) pool.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // Defensive: should anything still sit in the queue once every
        // worker is gone (possible only if a worker died), account for it
        // and drop it so waiting clients observe `ServeError::JobDropped`
        // instead of blocking forever.
        if let Ok(mut queue) = self.shared.queue.lock() {
            let leftover = queue.jobs.len() as u64;
            if leftover > 0 {
                self.shared.metrics.jobs_dropped.add(leftover);
            }
            queue.jobs.clear();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Safety margin around the linger-window end when deciding whether a
/// queued job's deadline falls inside it: deadlines within the window
/// plus this slack end the linger immediately (covering condvar timer
/// overshoot and the batch-claim latency), so a job whose ttl is shorter
/// than the linger window is served instead of spuriously expiring on an
/// idle server.
const LINGER_DEADLINE_SLACK: Duration = Duration::from_millis(10);

/// Whether a lingering worker could still gain batch companions: the
/// batch is short, the server is live, and — for a bounded queue — there
/// is admission room left for a companion to arrive through.
fn batch_can_grow(queue: &QueueState, shared: &Shared) -> bool {
    queue.jobs.len() < shared.max_batch
        && !queue.shutdown
        && (shared.queue_capacity == 0 || queue.jobs.len() < shared.queue_capacity)
}

/// Per-worker reusable state: every buffer a miss batch needs, preallocated
/// and recycled so the steady state never allocates.
struct WorkerState {
    scratch: InferenceScratch,
    batch_ws: BatchScratch,
    outs: Vec<Predictions>,
    /// Cone-key scratch (descriptors, WL keys, miss-row mask) for the
    /// cone-tier probe path; unused (and empty) when the tier is off.
    cone: ConeState,
    /// Fingerprints of the batch currently being executed, recorded right
    /// after hashing so the post-panic handler can attribute strikes to
    /// the submissions that were on the worker when it died. Empty in
    /// cold mode (no hashing → no fingerprints → no quarantine).
    batch_fps: Vec<u64>,
}

fn worker_loop(shared: &Shared, model: &GamoraReasoner, state: &mut WorkerState) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if !queue.jobs.is_empty() {
                    break;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue poisoned");
            }
            // Linger: a short batch waits briefly for companions so low
            // arrival rates still amortise the forward pass. The wait
            // releases the lock, so submitters keep filling the queue;
            // shutdown, a full batch, or a *full bounded queue* (no
            // companion can be admitted until we drain — waiting would be
            // pure dead time) ends the window early. A queued job whose
            // deadline falls inside the remaining window also ends it
            // immediately: sleeping toward a deadline risks expiring a
            // job (timer overshoot alone can eat a tight ttl), and the
            // conservative exit only costs a batching opportunity.
            if batch_can_grow(&queue, shared) && !shared.linger.is_zero() {
                let linger_timer = StageTimer::start();
                let linger_until = Instant::now() + shared.linger;
                while batch_can_grow(&queue, shared) {
                    if queue
                        .jobs
                        .iter()
                        .filter_map(|j| j.deadline)
                        .min()
                        .is_some_and(|d| d <= linger_until + LINGER_DEADLINE_SLACK)
                    {
                        break;
                    }
                    let Some(left) = linger_until.checked_duration_since(Instant::now()) else {
                        break;
                    };
                    if left.is_zero() {
                        break;
                    }
                    let (guard, _timeout) = shared
                        .available
                        .wait_timeout(queue, left)
                        .expect("queue poisoned");
                    queue = guard;
                }
                // Recorded only when a window was actually entered, so the
                // distribution measures real batching dead time, not the
                // zero-cost full-batch fast path.
                linger_timer.observe(&shared.metrics.stage_linger);
            }
            let take = shared.max_batch.min(queue.jobs.len());
            queue.jobs.drain(..take).collect::<Vec<Job>>()
        };
        // Claimed jobs freed queue space: wake blocked submitters.
        shared.space.notify_all();
        // A panicking batch (a pathological submission or an injected
        // fault) must not strand the jobs behind it: the unwinding batch
        // drops its senders — those clients observe
        // [`ServeError::JobDropped`] — and the panic is accounted here
        // before being re-raised, killing this worker. The supervisor
        // joins the corpse and respawns a fresh one (fresh scratch, same
        // `Arc`'d model), so capacity self-heals while the thread-local
        // damage a panic may have left behind is discarded with the
        // thread. `accounted` tracks how many of the batch's jobs were
        // finalised (answered, failed or deadline-rejected) before the
        // panic, so the dropped-job counter stays exact even for partial
        // batches; the batch's fingerprints collect strikes so a
        // submission that kills workers repeatedly is quarantined instead
        // of respawn-looping the pool.
        let batch_len = batch.len() as u64;
        let accounted = Cell::new(0u64);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_batch(shared, model, state, batch, &accounted);
        }));
        if let Err(payload) = outcome {
            shared.metrics.jobs_dropped.add(batch_len - accounted.get());
            shared.strike_fingerprints(&state.batch_fps);
            shared.note_incident();
            eprintln!(
                "gamora-serve: batch panicked; its unanswered jobs were dropped \
                 and the worker is being respawned"
            );
            resume_unwind(payload);
        }
    }
}

/// Evaluates the admission fail point (armed chaos runs only — callers
/// gate on [`gamora_fault::armed`]): any injection, an `err` or a
/// contained `panic`, sheds the submission as `Overloaded`. The panic is
/// caught *here*, before any queue lock is taken, so an injected
/// admission panic can neither poison the queue mutex nor unwind into
/// the client's thread.
fn admission_fault_fires() -> bool {
    catch_unwind(|| gamora_fault::hit(FaultPoint::Admission)).map_or(true, |r| r.is_err())
}

fn run_batch(
    shared: &Shared,
    model: &GamoraReasoner,
    state: &mut WorkerState,
    batch: Vec<Job>,
    accounted: &Cell<u64>,
) {
    // Strikes from a panic are attributed to the batch that was live
    // when the worker died; fingerprints from the previous batch must
    // never leak into that attribution.
    state.batch_fps.clear();
    // Phase 0: deadline admission — expired jobs are rejected before any
    // hashing or model work is spent on them. Queue wait (submission →
    // batch claim) is recorded per live job; expired jobs record their
    // whole submission → shed span as time-to-rejection instead.
    let m = &shared.metrics;
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        if job.deadline.is_some_and(|d| now > d) {
            m.jobs_expired.inc();
            m.stage_time_to_rejection
                .record(now.saturating_duration_since(job.submitted).as_micros() as u64);
            accounted.set(accounted.get() + 1);
            let _ = job.tx.send(Err(ServeError::DeadlineExpired));
        } else {
            m.stage_queue_wait
                .record(now.saturating_duration_since(job.admitted).as_micros() as u64);
            live.push(job);
        }
    }
    let mut batch = live;
    if batch.is_empty() {
        return;
    }

    // Signature-hash fail point. Hashing is load-bearing when enabled —
    // cache keys and quarantine fingerprints both derive from it — so an
    // injected `err` fails the whole batch rather than guessing at
    // identities; `panic` unwinds to the worker handler like any batch
    // panic. Cold mode never hashes, so the point is not checked there.
    if shared.hashing_enabled && gamora_fault::hit(FaultPoint::SignatureHash).is_err() {
        shared.note_incident();
        for job in batch {
            fail_job(shared, job, accounted);
        }
        return;
    }

    // Phase 1: resolve from the cache. The lock covers only the O(1) LRU
    // probe; the O(nodes) verbatim clone / transfer re-indexing runs on
    // `Arc`'d entries *outside* it, so a big transfer never stalls the
    // other workers' probes. With hashing disabled the signatures are
    // provably unused — skip the O(nodes) hash passes entirely so cold
    // mode measures pure model throughput. Router-submitted jobs carry a
    // precomputed signature; worker-side hashing is the fallback.
    let mut signatures: Vec<GraphSignature> = if shared.hashing_enabled {
        let hash_timer = StageTimer::start();
        let sigs: Vec<GraphSignature> = batch
            .iter_mut()
            .map(|j| j.sig.take().unwrap_or_else(|| GraphSignature::of(&j.aig)))
            .collect();
        hash_timer.observe(&m.stage_hash);
        sigs
    } else {
        Vec::new()
    };
    state
        .batch_fps
        .extend(signatures.iter().map(|s| s.key.fingerprint));

    // Quarantine gate: submissions whose fingerprint is under an active
    // quarantine (they killed workers twice) are answered
    // `AnalysisFailed` without touching the model again. The atomic gate
    // keeps this a single relaxed load while nothing is quarantined.
    if shared.hashing_enabled && shared.quarantine_active.load(Ordering::Relaxed) > 0 {
        let blocked: Vec<bool> = {
            let mut map = shared.quarantine.lock().expect("quarantine poisoned");
            shared.purge_quarantine(&mut map, Instant::now());
            signatures
                .iter()
                .map(|s| {
                    map.get(&s.key.fingerprint)
                        .is_some_and(|e| e.until.is_some())
                })
                .collect()
        };
        if blocked.iter().any(|&b| b) {
            let mut kept_jobs = Vec::with_capacity(batch.len());
            let mut kept_sigs = Vec::with_capacity(signatures.len());
            for ((job, sig), &b) in batch.into_iter().zip(signatures).zip(&blocked) {
                if b {
                    fail_job(shared, job, accounted);
                } else {
                    kept_jobs.push(job);
                    kept_sigs.push(sig);
                }
            }
            batch = kept_jobs;
            signatures = kept_sigs;
            // Strike attribution must track the jobs still live.
            state.batch_fps.clear();
            state
                .batch_fps
                .extend(signatures.iter().map(|s| s.key.fingerprint));
            if batch.is_empty() {
                return;
            }
        }
    }
    m.batches.inc();
    m.batch_size.record(batch.len() as u64);

    // Cache-resolve fail point: an injected `err` skips the probe phase
    // entirely — every job is treated as a miss (results are still
    // inserted afterwards), so the failure degrades throughput, never
    // correctness.
    let cache_usable =
        shared.hashing_enabled && gamora_fault::hit(FaultPoint::CacheResolve).is_ok();
    let mut served: Vec<Option<(Predictions, HitKind)>> = if cache_usable {
        let probes: Vec<Option<Arc<CacheEntry>>> = {
            let mut cache = shared.cache.lock().expect("cache poisoned");
            let cache = cache
                .as_mut()
                .expect("hashing_enabled implies a cache (both derive from cache_capacity > 0)");
            signatures
                .iter()
                .map(|sig| cache.probe_timed(&sig.key, &m.cache))
                .collect()
        };
        probes
            .iter()
            .zip(&signatures)
            .map(|(entry, sig)| entry.as_ref().and_then(|e| e.resolve_timed(sig, &m.cache)))
            .collect()
    } else {
        vec![None; batch.len()]
    };

    // Phase 2: one coalesced forward pass over the misses. Duplicate
    // submissions inside the batch (the common hammering pattern) share a
    // single forward slot, so they are answered without extra model work
    // and report as structural-hash hits just like phase-1 resolutions.
    let mut hit_flags: Vec<bool> = served.iter().map(Option::is_some).collect();
    let miss_idx: Vec<usize> = (0..batch.len()).filter(|&i| !hit_flags[i]).collect();
    if !miss_idx.is_empty() {
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(miss_idx.len());
        if shared.hashing_enabled {
            let mut seen: FxHashMap<(u64, u64), usize> = FxHashMap::default();
            for &i in &miss_idx {
                let sig = &signatures[i];
                let key = (sig.key.fingerprint, sig.identity);
                match seen.get(&key) {
                    Some(&slot) => {
                        slot_of.push(slot);
                        hit_flags[i] = true; // coalesced duplicate
                    }
                    None => {
                        seen.insert(key, unique.len());
                        slot_of.push(unique.len());
                        unique.push(i);
                    }
                }
            }
        } else {
            // Cold mode: no signatures, no coalescing — one slot per job.
            for &i in &miss_idx {
                slot_of.push(unique.len());
                unique.push(i);
            }
        }
        // The model call hosts three fail points (assemble, forward,
        // split). An injected `err` arrives as a typed [`Injected`]
        // panic payload — converted here into `AnalysisFailed` for every
        // job of the batch (none has been answered yet: phase-1 hits fan
        // out in phase 3), keeping the worker alive. Any other payload
        // is a genuine crash (or an injected `panic` action rehearsing
        // one): re-raised so the worker-loop handler accounts it and the
        // supervisor respawns the thread.
        let forward = {
            let aigs: Vec<&Aig> = unique.iter().map(|&i| &batch[i].aig).collect();
            let WorkerState {
                scratch,
                batch_ws,
                outs,
                cone,
                ..
            } = &mut *state;
            let cone_enabled = shared.cone_enabled;
            catch_unwind(AssertUnwindSafe(|| {
                if !cone_enabled {
                    let t = model.predict_batch_into_timed(
                        batch_ws,
                        scratch,
                        &aigs,
                        outs,
                        m.forward_observer(),
                    );
                    return (t, true);
                }
                // Cone tier: assemble first, compute canonical cone keys
                // over the merged batch graph, scatter every key the tier
                // already knows into the merged predictions, then run the
                // row-masked forward over the residual rows only. Keys
                // are WL-refined through as many rounds as the model has
                // message-passing layers, so an equal key implies a
                // bit-identical embedding row — serving the cached
                // prediction is exact, not heuristic.
                let assemble_micros = model.assemble_batch_timed(batch_ws, &aigs);
                let keys_timer = StageTimer::start();
                cone.compute_keys(&aigs, batch_ws.graph(), model.num_layers());
                keys_timer.observe(&m.cache.cone_keys_micros);
                let total = batch_ws.graph().num_nodes();
                cone.miss_rows.clear();
                let probe_timer = StageTimer::start();
                {
                    let guard = shared.cone.lock().expect("cone cache poisoned");
                    let tier = guard.as_ref().expect(
                        "cone_enabled implies a cone cache (both derive from cone_capacity > 0)",
                    );
                    let merged = batch_ws.merged_mut();
                    for r in 0..total {
                        match tier.probe(cone.key(r)) {
                            Some(packed) => {
                                let (leaf, xor, maj) = unpack_prediction(packed);
                                merged.root_leaf[r] = leaf;
                                merged.is_xor[r] = xor;
                                merged.is_maj[r] = maj;
                            }
                            None => cone.miss_rows.push(r as u32),
                        }
                    }
                }
                probe_timer.observe(&m.cache.cone_probe_micros);
                m.cache.cone_rows_probed.add(total as u64);
                m.cache
                    .cone_rows_hit
                    .add((total - cone.miss_rows.len()) as u64);
                let mut t = model.predict_assembled_rows_into_timed(
                    batch_ws,
                    scratch,
                    &aigs,
                    &cone.miss_rows,
                    outs,
                    m.forward_observer(),
                );
                t.assemble_micros = assemble_micros;
                // Insert only after the forward succeeded: a panicking
                // batch (injected or genuine) unwinds before this point,
                // so a poisoned submission never publishes rows into the
                // tier it could later be served from.
                if !cone.miss_rows.is_empty() {
                    let insert_timer = StageTimer::start();
                    {
                        let mut guard = shared.cone.lock().expect("cone cache poisoned");
                        let tier = guard.as_mut().expect("cone cache present when enabled");
                        let merged = batch_ws.merged_mut();
                        for &r in &cone.miss_rows {
                            let r = r as usize;
                            tier.insert(
                                cone.key(r),
                                pack_prediction(
                                    merged.root_leaf[r],
                                    merged.is_xor[r],
                                    merged.is_maj[r],
                                ),
                            );
                        }
                    }
                    insert_timer.observe(&m.cache.cone_insert_micros);
                    m.cache.cone_inserts.add(cone.miss_rows.len() as u64);
                }
                (t, !cone.miss_rows.is_empty())
            }))
        };
        let (timings, forward_ran) = match forward {
            Ok(t) => t,
            Err(payload) => {
                if payload.downcast_ref::<gamora_fault::Injected>().is_some() {
                    // Stamp the incident before fanning out the errors:
                    // a client that checks health the instant its job
                    // fails must already see Degraded.
                    shared.note_incident();
                    for job in batch {
                        fail_job(shared, job, accounted);
                    }
                    return;
                }
                resume_unwind(payload)
            }
        };
        m.stage_assemble.record(timings.assemble_micros);
        m.stage_forward.record(timings.forward_micros);
        m.stage_split.record(timings.split_micros);
        if forward_ran {
            m.forward_passes.inc();
        }
        if shared.hashing_enabled {
            // Build the O(nodes) hash indexes outside the lock; only the
            // O(1) LRU insertion happens under it.
            let entries: Vec<Arc<CacheEntry>> = unique
                .iter()
                .zip(state.outs.iter())
                .map(|(&i, preds)| Arc::new(CacheEntry::new(&signatures[i], preds.clone())))
                .collect();
            let mut cache = shared.cache.lock().expect("cache poisoned");
            let cache = cache
                .as_mut()
                .expect("hashing_enabled implies a cache (both derive from cache_capacity > 0)");
            for (&i, entry) in unique.iter().zip(entries) {
                cache.insert_entry(signatures[i].key, entry);
            }
        }
        for (pos, &i) in miss_idx.iter().enumerate() {
            served[i] = Some((state.outs[slot_of[pos]].clone(), HitKind::Verbatim));
        }
    }

    // Phase 3: per-job post-processing and fan-out. Counters reflect
    // completions only and are bumped per job at the moment its answer is
    // sent, so a panic mid-batch can never leave `jobs`/`cache_*` claiming
    // work that was actually dropped.
    for ((job, slot), cache_hit) in batch.into_iter().zip(served).zip(hit_flags) {
        let (predictions, _) = slot.expect("every job resolved");
        let adders = match job.kind {
            AnalysisKind::Classify => None,
            AnalysisKind::ExtractAdders => {
                let mut adders = extract_from_predictions(&job.aig, &predictions);
                lsb_correction(&job.aig, &mut adders);
                Some(adders)
            }
            #[cfg(test)]
            AnalysisKind::PanicForTest => panic!("deliberate test panic in post-processing"),
            #[cfg(test)]
            AnalysisKind::SleepForTest => {
                std::thread::sleep(Duration::from_millis(300));
                None
            }
        };
        let latency_micros = job.submitted.elapsed().as_micros() as u64;
        let out = JobOutput {
            predictions,
            adders,
            cache_hit,
            latency_micros,
        };
        m.latency_e2e.record(latency_micros);
        m.jobs.inc();
        if cache_hit {
            m.cache_hits.inc();
        } else {
            m.cache_misses.inc();
        }
        accounted.set(accounted.get() + 1);
        let _ = job.tx.send(Ok(out));
    }
}

/// Terminal failure path for one job: bumps `jobs_failed`, records the
/// submission → shed span, accounts the job (so the post-panic drop
/// arithmetic stays exact) and answers [`ServeError::AnalysisFailed`].
/// Callers decide whether the failure is an incident worth degrading
/// health over ([`Shared::note_incident`]).
fn fail_job(shared: &Shared, job: Job, accounted: &Cell<u64>) {
    let m = &shared.metrics;
    m.jobs_failed.inc();
    m.stage_time_to_rejection
        .record(job.submitted.elapsed().as_micros() as u64);
    accounted.set(accounted.get() + 1);
    let _ = job.tx.send(Err(ServeError::AnalysisFailed));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora::{ModelDepth, ReasonerConfig, TrainConfig};
    use gamora_circuits::csa_multiplier;

    fn tiny_trained() -> GamoraReasoner {
        let m = csa_multiplier(3);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m.aig],
            &TrainConfig {
                epochs: 15,
                log_every: 0,
                ..TrainConfig::default()
            },
        );
        reasoner
    }

    #[test]
    fn served_predictions_match_in_process() {
        let reasoner = tiny_trained();
        let subject = csa_multiplier(4);
        let expected = reasoner.predict(&subject.aig);

        let server = Server::start(reasoner, ServeConfig::default());
        let out = server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("job answered");
        assert!(!out.cache_hit);
        assert_eq!(out.predictions.root_leaf, expected.root_leaf);
        assert_eq!(out.predictions.is_xor, expected.is_xor);
        assert_eq!(out.predictions.is_maj, expected.is_maj);
        assert!(out.adders.is_none());
    }

    #[test]
    fn repeat_submission_is_a_cache_hit_with_no_extra_forward() {
        let server = Server::start(tiny_trained(), ServeConfig::default());
        let subject = csa_multiplier(4);
        let first = server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("job answered");
        assert!(!first.cache_hit);
        let passes_after_first = server.stats().forward_passes;
        assert_eq!(passes_after_first, 1);

        let second = server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("job answered");
        assert!(
            second.cache_hit,
            "repeat submission must be served from cache"
        );
        assert_eq!(second.predictions.root_leaf, first.predictions.root_leaf);
        let stats = server.shutdown();
        assert_eq!(
            stats.forward_passes, passes_after_first,
            "cache hit must not run the model"
        );
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.jobs_submitted, 2);
        assert_eq!(stats.jobs_dropped, 0);
    }

    /// A quantised reasoner serves through the unchanged `Arc`'d-model
    /// path: workers share the same i8 store, answers are bit-identical
    /// to in-process quantised prediction, and the cache works on top.
    #[test]
    fn quantised_model_serves_through_shared_arc_path() {
        let mut reasoner = tiny_trained();
        reasoner.quantise();
        assert!(reasoner.is_quantised());
        let subject = csa_multiplier(4);
        let expected = reasoner.predict(&subject.aig);

        let shared = Arc::new(reasoner);
        let server = Server::start_shared(
            Arc::clone(&shared),
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
        );
        let first = server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("job answered");
        assert!(!first.cache_hit);
        assert_eq!(first.predictions, expected);
        let second = server
            .submit(subject.aig.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("job answered");
        assert!(second.cache_hit, "quantised answers are cacheable");
        assert_eq!(second.predictions, expected);
        let stats = server.shutdown();
        assert_eq!(stats.forward_passes, 1);
        // The server never cloned the quantised model either.
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    fn extraction_jobs_return_postprocessed_adders() {
        let server = Server::start(tiny_trained(), ServeConfig::default());
        let subject = csa_multiplier(4);
        let out = server
            .submit(subject.aig.clone(), AnalysisKind::ExtractAdders)
            .expect("admitted")
            .wait()
            .expect("job answered");
        let adders = out.adders.expect("extraction requested");
        assert!(!adders.is_empty(), "a 4-bit CSA multiplier contains adders");
    }

    #[test]
    fn distinct_graphs_coalesce_into_one_batch() {
        // One worker + a pre-filled queue: all jobs land in one batch and
        // therefore one forward pass.
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 16,
                workers: 1,
                cache_capacity: 16,
                ..ServeConfig::default()
            },
        );
        let jobs: Vec<(gamora_aig::Aig, AnalysisKind)> = (2..6usize)
            .map(|b| (csa_multiplier(b).aig, AnalysisKind::Classify))
            .collect();
        let outs = server.submit_all(jobs).expect("all jobs answered");
        assert_eq!(outs.len(), 4);
        let stats = server.shutdown();
        assert_eq!(stats.jobs, 4);
        assert_eq!(
            stats.forward_passes, 1,
            "an atomic burst under one idle worker coalesces into one pass"
        );
    }

    #[test]
    fn duplicate_submissions_in_one_burst_share_a_forward_slot() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 8,
                workers: 1,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        let aig = csa_multiplier(3).aig;
        let outs = server
            .submit_all(vec![
                (aig.clone(), AnalysisKind::Classify),
                (aig.clone(), AnalysisKind::Classify),
                (aig.clone(), AnalysisKind::Classify),
            ])
            .expect("all jobs answered");
        assert_eq!(outs[0].predictions.root_leaf, outs[1].predictions.root_leaf);
        assert!(!outs[0].cache_hit);
        assert!(outs[1].cache_hit && outs[2].cache_hit);
        let stats = server.shutdown();
        assert_eq!(stats.forward_passes, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.jobs, stats.cache_hits + stats.cache_misses);
    }

    #[test]
    fn zero_cache_capacity_disables_all_structural_reuse() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 1,
                workers: 1,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let aig = csa_multiplier(3).aig;
        let a = server
            .submit(aig.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("job answered");
        let b = server
            .submit(aig.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("job answered");
        assert!(!a.cache_hit && !b.cache_hit);
        let stats = server.shutdown();
        assert_eq!(
            stats.forward_passes, 2,
            "cold mode must run the model per job"
        );
        assert_eq!(stats.cache_hits, 0);
    }

    /// Determinism under concurrency: N workers sharing one `Arc`'d model
    /// (cache off, so every job really runs a forward pass) produce
    /// predictions bit-identical to single-threaded `predict` calls over
    /// the same submission set.
    #[test]
    fn shared_model_concurrent_workers_match_single_threaded() {
        let reasoner = Arc::new(tiny_trained());
        let subjects: Vec<gamora_aig::Aig> = (2..6usize).map(|b| csa_multiplier(b).aig).collect();
        let expected: Vec<Predictions> = subjects.iter().map(|a| reasoner.predict(a)).collect();

        let server = Server::start_shared(
            Arc::clone(&reasoner),
            ServeConfig {
                max_batch: 2,
                workers: 4,
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let jobs: Vec<(gamora_aig::Aig, AnalysisKind)> = (0..16usize)
            .map(|i| (subjects[i % subjects.len()].clone(), AnalysisKind::Classify))
            .collect();
        let outs = server.submit_all(jobs).expect("all jobs answered");
        for (i, out) in outs.iter().enumerate() {
            let exp = &expected[i % subjects.len()];
            assert_eq!(out.predictions.root_leaf, exp.root_leaf, "job {i}");
            assert_eq!(out.predictions.is_xor, exp.is_xor, "job {i}");
            assert_eq!(out.predictions.is_maj, exp.is_maj, "job {i}");
        }
        let stats = server.shutdown();
        assert_eq!(stats.jobs, 16);
        // The original Arc is still usable — the server never cloned the
        // model, only the handle.
        assert_eq!(Arc::strong_count(&reasoner), 1);
    }

    /// A job the server drops (worker gone before answering) surfaces as
    /// a `ServeError` instead of panicking the client thread.
    #[test]
    fn dropped_job_is_an_error_not_a_panic() {
        let (tx, rx) = mpsc::channel::<Result<JobOutput, ServeError>>();
        drop(tx); // the serving side dies without answering
        let ticket = JobTicket { rx };
        assert_eq!(ticket.wait().unwrap_err(), ServeError::JobDropped);
    }

    #[test]
    fn wait_timeout_returns_instead_of_blocking_forever() {
        let (tx, rx) = mpsc::channel::<Result<JobOutput, ServeError>>();
        let ticket = JobTicket { rx };
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(10)).unwrap_err(),
            ServeError::WaitTimeout,
            "an unanswered ticket must time out, not hang"
        );
        drop(tx);
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(10)).unwrap_err(),
            ServeError::JobDropped
        );
    }

    #[test]
    fn worker_pool_answers_everything_under_contention() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 4,
                workers: 3,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        // 3 distinct graphs, resubmitted 4x each.
        let jobs: Vec<(gamora_aig::Aig, AnalysisKind)> = (0..12usize)
            .map(|i| (csa_multiplier(2 + i % 3).aig, AnalysisKind::Classify))
            .collect();
        let outs = server.submit_all(jobs).expect("all jobs answered");
        assert_eq!(outs.len(), 12);
        let stats = server.shutdown();
        assert_eq!(stats.jobs, 12);
        assert_eq!(stats.cache_hits + stats.cache_misses, 12);
        assert!(stats.cache_misses >= 3, "three distinct graphs");
    }

    /// Stats stay exact through a panicking batch: jobs answered before
    /// the panic count as completions, the rest as drops, and the
    /// accounting identity holds after shutdown.
    #[test]
    fn panicked_batch_accounts_every_job_exactly_once() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 8,
                workers: 1,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        );
        let aig = csa_multiplier(3).aig;
        // One atomic burst: the first job completes, the second panics in
        // post-processing, the third (behind the panic) is dropped.
        let (_, tickets) = server
            .submit_batch(vec![
                (aig.clone(), AnalysisKind::Classify, None),
                (aig.clone(), AnalysisKind::PanicForTest, None),
                (aig.clone(), AnalysisKind::Classify, None),
            ])
            .expect("admitted");
        let results: Vec<Result<JobOutput, ServeError>> =
            tickets.into_iter().map(JobTicket::wait).collect();
        assert!(results[0].is_ok(), "job before the panic completes");
        assert_eq!(results[1].as_ref().unwrap_err(), &ServeError::JobDropped);
        assert_eq!(results[2].as_ref().unwrap_err(), &ServeError::JobDropped);

        // The panic killed the worker; the supervisor respawns it, so the
        // server keeps serving (and the cache, living in `Shared`, stays
        // warm across the worker generation).
        let after = server
            .submit(aig.clone(), AnalysisKind::Classify)
            .expect("server still accepts work")
            .wait()
            .expect("respawned worker serves");
        assert!(after.cache_hit, "cache still warm from the first job");

        let stats = server.shutdown();
        assert_eq!(stats.jobs_submitted, 4);
        assert_eq!(stats.jobs, 2, "completions only");
        assert_eq!(stats.jobs_dropped, 2, "panicked + following job");
        assert_eq!(stats.jobs_expired, 0);
        assert_eq!(stats.jobs_failed, 0, "nothing was failed terminally");
        assert!(
            stats.workers_respawned >= 1,
            "the panicking batch must have been healed by a respawn"
        );
        assert_eq!(
            stats.jobs_submitted,
            stats.jobs + stats.jobs_dropped + stats.jobs_expired + stats.jobs_failed,
            "every admitted job is accounted exactly once"
        );
        assert_eq!(
            stats.jobs,
            stats.cache_hits + stats.cache_misses,
            "completions partition into hits and misses"
        );
    }

    /// Regression: once shutdown has begun, submission fails fast instead
    /// of enqueueing into a queue no worker will ever drain. The flag is
    /// checked under the queue lock, so there is no window in which a
    /// submission can slip past the exiting workers.
    #[test]
    fn submit_after_shutdown_fails_fast() {
        let server = Server::start(tiny_trained(), ServeConfig::default());
        let aig = csa_multiplier(3).aig;
        // Pre-shutdown job: admitted and (being pre-drain) still answered.
        let ticket = server
            .submit(aig.clone(), AnalysisKind::Classify)
            .expect("admitted before shutdown");
        server.begin_shutdown();
        assert_eq!(
            server
                .submit(aig.clone(), AnalysisKind::Classify)
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        assert_eq!(
            server
                .try_submit(aig.clone(), AnalysisKind::Classify)
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        assert!(
            server
                .submit_batch(vec![(aig, AnalysisKind::Classify, None)])
                .is_err(),
            "bulk submission must fail fast too"
        );
        // The admitted job is drained, not abandoned.
        ticket
            .wait()
            .expect("pre-shutdown job drained by the exiting workers");
        let stats = server.shutdown();
        assert_eq!(stats.jobs_submitted, 1);
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.jobs_dropped, 0);
    }

    /// The linger window turns a trickle into a batch: two submissions a
    /// few milliseconds apart are served by one forward pass.
    #[test]
    fn linger_coalesces_trickled_submissions() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 8,
                workers: 1,
                cache_capacity: 0, // distinct forward slots, no cache noise
                linger_micros: 500_000,
                ..ServeConfig::default()
            },
        );
        let t1 = server
            .submit(csa_multiplier(3).aig, AnalysisKind::Classify)
            .expect("admitted");
        std::thread::sleep(Duration::from_millis(30));
        let t2 = server
            .submit(csa_multiplier(4).aig, AnalysisKind::Classify)
            .expect("admitted");
        t1.wait().expect("answered");
        t2.wait().expect("answered");
        let stats = server.shutdown();
        assert_eq!(stats.jobs, 2);
        assert_eq!(
            stats.batches, 1,
            "the lingering worker must absorb the late arrival into its batch"
        );
        assert_eq!(stats.forward_passes, 1);
    }

    /// A *full bounded queue* also ends the linger window: with
    /// `queue_capacity < max_batch` no companion can be admitted until
    /// the worker drains, so waiting for one would be pure dead time.
    #[test]
    fn full_bounded_queue_does_not_linger() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 8,
                workers: 1,
                cache_capacity: 0,
                queue_capacity: 1,
                linger_micros: 10_000_000, // 10s: lingering would blow the time box
                ..ServeConfig::default()
            },
        );
        let start = Instant::now();
        for _ in 0..3 {
            server
                .submit(csa_multiplier(3).aig, AnalysisKind::Classify)
                .expect("admitted")
                .wait()
                .expect("answered");
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a worker holding the only admissible job must run it, not linger"
        );
        server.shutdown();
    }

    /// A bulk submission aborted by shutdown retracts its own still-queued
    /// jobs (their receivers die with the error) instead of letting the
    /// drain spend forward passes answering nobody; the accounting
    /// identity survives the abort.
    #[test]
    fn shutdown_mid_burst_retracts_unclaimed_jobs() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 1,
                workers: 1,
                cache_capacity: 0,
                queue_capacity: 1,
                linger_micros: 0,
                ..ServeConfig::default()
            },
        );
        // Through a 1-slot queue the burst can only advance one forward
        // pass at a time, so admitting all BURST jobs inside the sleep
        // would need a per-forward latency far below anything this
        // hardware can do even on cache hits — the interruption is
        // effectively guaranteed in debug *and* release.
        const BURST: usize = 1000;
        let subject = csa_multiplier(12).aig;
        std::thread::scope(|scope| {
            let server = &server;
            let aig = subject.clone();
            let submitter = scope.spawn(move || {
                server.submit_batch(
                    (0..BURST)
                        .map(|_| (aig.clone(), AnalysisKind::Classify, None))
                        .collect(),
                )
            });
            std::thread::sleep(Duration::from_millis(20));
            server.begin_shutdown();
            let result = submitter.join().expect("submitter thread");
            assert_eq!(
                result.map(|(_, t)| t.len()).unwrap_err(),
                SubmitError::ShuttingDown,
                "a {BURST}-job burst through a 1-slot queue cannot finish in 20ms"
            );
        });
        let stats = server.shutdown();
        assert!(
            stats.jobs_submitted < BURST as u64,
            "the burst was interrupted"
        );
        assert_eq!(
            stats.jobs_submitted,
            stats.jobs + stats.jobs_expired + stats.jobs_dropped,
            "retracted jobs are accounted as dropped, completions as jobs"
        );
    }

    /// Lingering never expires a job: the wake-up is clamped to the
    /// earliest queued deadline, so a ttl *shorter than the linger
    /// window* is still served on an otherwise idle server.
    #[test]
    fn linger_window_yields_to_a_queued_job_deadline() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 8,
                workers: 1,
                cache_capacity: 0,
                queue_capacity: 0,
                linger_micros: 500_000, // 0.5s linger vs a 0.2s ttl
                ..ServeConfig::default()
            },
        );
        let out = server
            .submit_within(
                csa_multiplier(3).aig,
                AnalysisKind::Classify,
                Duration::from_millis(200),
            )
            .expect("admitted")
            .wait()
            .expect("a lingering worker must claim the job before its deadline");
        assert!(!out.cache_hit);
        let stats = server.shutdown();
        assert_eq!(stats.jobs_expired, 0);
        assert_eq!(stats.jobs, 1);
    }

    /// A blocking deadline submit never waits past its own ttl on a full
    /// queue: it is shed at the door instead of being admitted into a
    /// guaranteed `DeadlineExpired`.
    #[test]
    fn blocking_submit_within_gives_up_at_its_deadline() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 1,
                workers: 1,
                cache_capacity: 0,
                queue_capacity: 1,
                linger_micros: 0,
                ..ServeConfig::default()
            },
        );
        let subject = csa_multiplier(3).aig;
        // Submit a deterministically slow job and wait until the worker
        // has *just started* its batch (the `batches` counter bumps at
        // run_batch entry): from that instant the next queue-slot release
        // is a full 300ms away — wider than any plausible scheduler stall
        // under parallel test execution on one core — so the 100us ttl
        // below cannot race a transiently-free slot.
        let busy = server
            .submit(subject.clone(), AnalysisKind::SleepForTest)
            .expect("admitted");
        while server.stats().batches < 1 {
            std::thread::yield_now();
        }
        let queued = server
            .submit(subject.clone(), AnalysisKind::SleepForTest)
            .expect("admitted");
        let start = Instant::now();
        let shed =
            server.submit_within(subject, AnalysisKind::Classify, Duration::from_micros(100));
        assert_eq!(
            shed.map(|_| ()).unwrap_err(),
            SubmitError::Overloaded,
            "the 100us ttl elapses long before the 300ms sleeps free a slot"
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "the shed submit must return promptly, not block indefinitely"
        );
        busy.wait().expect("answered");
        queued.wait().expect("answered");
        let stats = server.shutdown();
        assert_eq!(stats.rejected_overload, 1);
        assert_eq!(stats.jobs, 2);
    }

    /// The metric snapshot tells the full serve story: counters agree
    /// with `stats()`, every stage histogram is present, and the miss/hit
    /// paths each record the spans they must (forward stages for misses,
    /// cache probe/resolve for hits).
    #[test]
    fn metrics_snapshot_covers_stages_and_matches_stats() {
        let server = Server::start(tiny_trained(), ServeConfig::default());
        let subject = csa_multiplier(4).aig;
        let miss = server
            .submit(subject.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("answered");
        assert!(!miss.cache_hit);
        let hit = server
            .submit(subject.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("answered");
        assert!(hit.cache_hit);

        let snap = server.metrics();
        let stats = server.stats();
        assert_eq!(snap.counter("serve_jobs_submitted_total"), 2);
        assert_eq!(snap.counter("serve_jobs_completed_total"), stats.jobs);
        assert_eq!(snap.counter("serve_cache_hits_total"), stats.cache_hits);
        assert_eq!(snap.gauge("serve_peak_queued"), stats.peak_queued);

        // Per-job stages: one observation per completed job.
        for stage in [
            "stage_admission_micros",
            "stage_queue_wait_micros",
            "latency_e2e_micros",
        ] {
            assert_eq!(
                snap.histogram(stage).expect(stage).count(),
                2,
                "{stage} must see both jobs"
            );
        }
        // Per-batch miss-path stages: exactly one forward pass happened.
        for stage in [
            "stage_batch_assemble_micros",
            "stage_gnn_forward_micros",
            "stage_prediction_split_micros",
        ] {
            assert_eq!(snap.histogram(stage).expect(stage).count(), 1, "{stage}");
        }
        // The hit was a verbatim resolve; both batches probed.
        assert_eq!(snap.counter("cache_hits_verbatim_total"), 1);
        assert_eq!(snap.histogram("cache_probe_micros").unwrap().count(), 2);
        // Distributions saw each admission / executed batch.
        assert_eq!(snap.histogram("queue_depth").unwrap().count(), 2);
        assert_eq!(snap.histogram("batch_size").unwrap().count(), 2);
        // Layer timing is off by default — no per-layer series registered.
        assert!(snap.histogram("forward_layer_0_micros").is_none());
        // E2E latency can never undercut its queue-wait component.
        let e2e = snap.histogram("latency_e2e_micros").unwrap();
        let wait = snap.histogram("stage_queue_wait_micros").unwrap();
        assert!(
            e2e.sum >= wait.sum,
            "e2e {} < queue wait {}",
            e2e.sum,
            wait.sum
        );
        server.shutdown();
    }

    /// Opting into `layer_timing` registers and fills one histogram per
    /// GNN trunk layer plus the shared/heads stages.
    #[test]
    fn layer_timing_records_per_layer_forward_spans() {
        let server = Server::start(
            tiny_trained(), // 2 trunk layers
            ServeConfig {
                layer_timing: true,
                ..ServeConfig::default()
            },
        );
        server
            .submit(csa_multiplier(4).aig, AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("answered");
        let snap = server.metrics();
        for name in [
            "forward_layer_0_micros",
            "forward_layer_1_micros",
            "forward_shared_micros",
            "forward_heads_micros",
        ] {
            assert_eq!(snap.histogram(name).expect(name).count(), 1, "{name}");
        }
        assert!(snap.histogram("forward_layer_2_micros").is_none());
        server.shutdown();
    }

    /// Shed submissions record their time-to-rejection: the overload path
    /// is observable, not silent.
    #[test]
    fn overload_rejection_records_time_to_rejection() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 1,
                workers: 1,
                cache_capacity: 0,
                queue_capacity: 1,
                linger_micros: 0,
                ..ServeConfig::default()
            },
        );
        let subject = csa_multiplier(3).aig;
        // Hold the worker, fill the one queue slot, then shed.
        let busy = server
            .submit(subject.clone(), AnalysisKind::SleepForTest)
            .expect("admitted");
        while server.stats().batches < 1 {
            std::thread::yield_now();
        }
        let queued = server
            .submit(subject.clone(), AnalysisKind::Classify)
            .expect("admitted");
        let mut shed = 0u64;
        while shed == 0 {
            if server
                .try_submit(subject.clone(), AnalysisKind::Classify)
                .is_err()
            {
                shed = 1;
            }
        }
        let snap = server.metrics();
        assert_eq!(
            snap.counter("serve_rejected_overload_total"),
            server.stats().rejected_overload
        );
        assert!(
            snap.histogram("stage_time_to_rejection_micros")
                .unwrap()
                .count()
                >= 1,
            "every Overloaded shed must record its time to rejection"
        );
        busy.wait().expect("answered");
        queued.wait().expect("answered");
        server.shutdown();
    }

    /// `max_batch` jobs end a linger window immediately — a full batch
    /// never waits out the timer.
    #[test]
    fn full_batch_does_not_linger() {
        let server = Server::start(
            tiny_trained(),
            ServeConfig {
                max_batch: 2,
                workers: 1,
                cache_capacity: 0,
                linger_micros: 10_000_000, // 10s: a timer wait would hang the test
                ..ServeConfig::default()
            },
        );
        let start = Instant::now();
        let outs = server
            .submit_all(vec![
                (csa_multiplier(3).aig, AnalysisKind::Classify),
                (csa_multiplier(4).aig, AnalysisKind::Classify),
            ])
            .expect("answered");
        assert_eq!(outs.len(), 2);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a full batch must run without waiting out the linger window"
        );
        server.shutdown();
    }
}
