//! Chaos suite: deterministic fail-point storms through the full
//! `ShardRouter` stack, exercising the self-healing serve layer end to
//! end — worker respawn, poison-fingerprint quarantine, deadline-aware
//! retry, and health reporting.
//!
//! Every test arms `gamora-fault` via [`gamora_fault::arm`], whose
//! process-global gate serialises the tests in this binary, so the
//! global fail-point registry never sees two specs at once. The
//! acceptance invariant throughout: **every submitted job gets exactly
//! one terminal outcome** (a prediction, `JobDropped`, `AnalysisFailed`
//! or `DeadlineExpired` — never a hang, never two answers), and the
//! stats equation
//! `jobs_submitted == jobs + jobs_expired + jobs_dropped + jobs_failed`
//! balances once the fleet is quiescent. CI runs this file under
//! `--release` as part of the robustness guard.

use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_circuits::csa_multiplier;
use gamora_serve::scheduler::{AnalysisKind, Health, ServeConfig, ServeError, Server, SubmitError};
use gamora_serve::{RetryPolicy, ShardRouter};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_trained() -> GamoraReasoner {
    let m = csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 15,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

fn assert_balanced(stats: &gamora_serve::scheduler::ServeStats) {
    assert_eq!(
        stats.jobs_submitted,
        stats.jobs + stats.jobs_expired + stats.jobs_dropped + stats.jobs_failed,
        "every admitted job must be accounted exactly once: {stats:?}"
    );
}

/// The acceptance storm: panic probability on *every* stage fail point,
/// a multi-shard fleet, hundreds of submissions through the retrying
/// router ingress. Every job resolves exactly once, workers died and
/// were respawned, the accounting equation balances, and once the storm
/// passes (faults disarmed, quarantine TTLs and the incident window
/// lapsed) the fleet reports `Healthy` again.
#[test]
fn chaos_storm_every_job_gets_exactly_one_terminal_outcome() {
    let submissions = if cfg!(debug_assertions) { 64 } else { 256 };
    let router = ShardRouter::start(
        Arc::new(tiny_trained()),
        4,
        ServeConfig {
            max_batch: 2,
            workers: 2,
            cache_capacity: 32,
            queue_capacity: 0,
            linger_micros: 0,
            quarantine_ttl_micros: 200_000,
            ..ServeConfig::default()
        },
    );
    let subjects: Vec<_> = (3..=8).map(|b| csa_multiplier(b).aig).collect();
    let jobs: Vec<_> = (0..submissions)
        .map(|i| (subjects[i % subjects.len()].clone(), AnalysisKind::Classify))
        .collect();

    let guard = gamora_fault::arm("all:panic:prob=0.15,seed=11");
    let policy = RetryPolicy {
        max_retries: 2,
        backoff_micros: 200,
        deadline: None,
    };
    let outcomes = router.submit_all_retrying(jobs, &policy);
    drop(guard);

    assert_eq!(outcomes.len(), submissions, "one outcome per submission");
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(_)
            | Err(ServeError::JobDropped)
            | Err(ServeError::AnalysisFailed)
            | Err(ServeError::DeadlineExpired) => {}
            Err(e) => panic!("job {i}: non-terminal chaos outcome {e}"),
        }
    }

    let mid = router.stats();
    assert!(
        mid.workers_respawned > 0,
        "a 15% all-stage panic storm over {submissions} jobs must kill \
         (and respawn) at least one worker: {mid:?}"
    );
    assert!(
        mid.retries > 0,
        "admission faults at 15% must have triggered at least one retry"
    );

    // Storm over: give the quarantine TTL (200ms) and the incident
    // window (500ms) time to lapse, then the fleet must self-report
    // healthy — no operator intervention, no restart.
    std::thread::sleep(Duration::from_millis(800));
    assert_eq!(
        router.health(),
        Health::Healthy,
        "the fleet must return to Healthy once faults are disarmed and TTLs lapse"
    );

    let stats = router.shutdown();
    assert_balanced(&stats);
}

/// A fingerprint whose batches kill two workers is quarantined: further
/// submissions are answered `AnalysisFailed` *without running the
/// model*, the pool stops respawn-looping, and after the TTL the
/// fingerprint gets a fresh chance.
#[test]
fn poison_fingerprint_is_quarantined_after_two_worker_deaths() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 1,
            workers: 1,
            cache_capacity: 8,
            queue_capacity: 0,
            linger_micros: 0,
            quarantine_ttl_micros: 300_000,
            ..ServeConfig::default()
        },
    );
    let poison = csa_multiplier(5).aig;

    let guard = gamora_fault::arm("forward:panic");
    for strike in 0..2 {
        let err = server
            .submit(poison.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect_err("the batch panics");
        assert_eq!(
            err,
            ServeError::JobDropped,
            "strike {strike}: a worker death drops the batch"
        );
    }
    drop(guard);

    // Third submission: the fingerprint now has two strikes, so it is
    // quarantined at the gate — `AnalysisFailed`, no forward, no death.
    let err = server
        .submit(poison.clone(), AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect_err("quarantined");
    assert_eq!(err, ServeError::AnalysisFailed);
    assert_eq!(
        server.health(),
        Health::Degraded,
        "an active quarantine reports Degraded"
    );

    // Other subjects are unaffected: the respawned worker serves them.
    server
        .submit(csa_multiplier(4).aig, AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect("healthy subjects still serve during a quarantine");

    // TTL (300ms) + incident window (500ms) lapse: health recovers and
    // the fingerprint gets a fresh chance — faults are disarmed, so it
    // now serves.
    std::thread::sleep(Duration::from_millis(900));
    assert_eq!(server.health(), Health::Healthy);
    server
        .submit(poison, AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect("the quarantine expired; the subject serves normally");

    let stats = server.shutdown();
    assert_eq!(stats.workers_respawned, 2, "one respawn per strike");
    assert_eq!(stats.quarantines, 1, "the poison fingerprint, once");
    assert_eq!(stats.jobs_failed, 1, "the quarantined submission");
    assert_balanced(&stats);
}

/// An injected stage *error* (as opposed to a panic) fails the batch
/// cleanly: the jobs come back `AnalysisFailed`, the worker survives
/// (no respawn), and serving resumes the moment the fault is disarmed.
#[test]
fn injected_stage_error_fails_jobs_without_killing_workers() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 1,
            workers: 1,
            cache_capacity: 8,
            queue_capacity: 0,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    let subject = csa_multiplier(4).aig;

    let guard = gamora_fault::arm("forward:err");
    let err = server
        .submit(subject.clone(), AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect_err("the injected stage error fails the job");
    assert_eq!(err, ServeError::AnalysisFailed);
    assert_eq!(
        server.health(),
        Health::Degraded,
        "a just-failed batch is a recent incident"
    );
    drop(guard);

    server
        .submit(subject, AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect("the same worker serves once the fault is disarmed");

    let stats = server.shutdown();
    assert_eq!(
        stats.workers_respawned, 0,
        "an injected error must not kill the worker"
    );
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs, 1);
    assert_balanced(&stats);
}

/// A failing cache degrades to all-miss serving instead of failing
/// jobs: predictions stay correct (the model runs), only the shortcut
/// is lost — and it comes back the moment the fault clears.
#[test]
fn cache_fault_degrades_to_miss_serving() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 1,
            workers: 1,
            cache_capacity: 8,
            queue_capacity: 0,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    let subject = csa_multiplier(4).aig;
    let serve = |aig: &gamora_aig::Aig| {
        server
            .submit(aig.clone(), AnalysisKind::Classify)
            .expect("admitted")
            .wait()
            .expect("served")
    };

    assert!(!serve(&subject).cache_hit, "cold: a miss");
    assert!(serve(&subject).cache_hit, "warm: a hit");

    let guard = gamora_fault::arm("cache:err");
    let degraded = serve(&subject);
    assert!(
        !degraded.cache_hit,
        "with the cache faulted the job is served as a miss — degraded, not failed"
    );
    drop(guard);

    assert!(
        serve(&subject).cache_hit,
        "the shortcut returns with the cache"
    );

    let stats = server.shutdown();
    assert_eq!(
        stats.jobs, 4,
        "every submission served despite the cache fault"
    );
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(
        stats.forward_passes, 2,
        "cold miss + degraded miss; the two hits were free"
    );
    assert_balanced(&stats);
}

/// Admission faults — error *or* panic — are contained at the door and
/// shed as `Overloaded`: nothing is enqueued, no worker is involved,
/// and the caller can retry.
#[test]
fn admission_fault_sheds_as_overloaded() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 1,
            workers: 1,
            cache_capacity: 0,
            queue_capacity: 0,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    let subject = csa_multiplier(4).aig;

    for spec in ["admission:err", "admission:panic"] {
        let _guard = gamora_fault::arm(spec);
        assert_eq!(
            server
                .try_submit(subject.clone(), AnalysisKind::Classify)
                .expect_err(spec),
            SubmitError::Overloaded,
            "{spec}: an admission fault sheds instead of enqueueing"
        );
    }

    // Disarmed: the very next submission is admitted and served.
    server
        .submit(subject, AnalysisKind::Classify)
        .expect("admitted once disarmed")
        .wait()
        .expect("served");

    let stats = server.shutdown();
    assert_eq!(stats.rejected_overload, 2);
    assert_eq!(stats.jobs, 1);
    assert_balanced(&stats);
}

/// Shutdown racing a lingering worker while batch assembly is slowed by
/// an injected delay: the linger aborts promptly, the admitted job is
/// still served (never dropped), and shutdown completes without waiting
/// out the full linger window.
#[test]
fn shutdown_during_linger_with_injected_assembly_delay() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 8,
            workers: 1,
            cache_capacity: 0,
            queue_capacity: 0,
            linger_micros: 2_000_000, // the worker would happily wait 2s for companions
            ..ServeConfig::default()
        },
    );
    let _guard = gamora_fault::arm("assemble:delay(20000)");

    let start = Instant::now();
    let ticket = server
        .submit(csa_multiplier(4).aig, AnalysisKind::Classify)
        .expect("admitted");
    // Let the worker claim the lone job and start lingering for batch
    // companions that will never come, then shut down under its feet.
    std::thread::sleep(Duration::from_millis(50));
    server.begin_shutdown();

    ticket
        .wait_timeout(Duration::from_secs(60))
        .expect("the admitted job is served despite shutdown-during-linger");
    let stats = server.shutdown();
    let elapsed = start.elapsed();

    assert!(
        elapsed < Duration::from_millis(1_500),
        "shutdown must abort the 2s linger, not sit it out (took {elapsed:?})"
    );
    assert_eq!(stats.jobs, 1);
    assert_eq!(stats.jobs_dropped, 0, "an admitted job is never abandoned");
    assert_balanced(&stats);
}

/// A multi-shard burst interrupted by shutdown while an injected delay
/// holds the workers: the blocked shard retracts its queued wave, the
/// router retracts the bursts already admitted to earlier shards, the
/// caller gets a prompt error — and nobody hangs, nothing leaks.
#[test]
fn burst_retract_under_injected_forward_delay() {
    let router = ShardRouter::start(
        Arc::new(tiny_trained()),
        2,
        ServeConfig {
            max_batch: 1,
            workers: 1,
            cache_capacity: 16, // hashing on: bursts route by fingerprint
            queue_capacity: 2,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    // Find one subject per shard so the burst spans both: the router
    // admits shard 0's slice first, then blocks on shard 1's capacity.
    let mut by_shard: [Option<gamora_aig::Aig>; 2] = [None, None];
    for bits in 3..16 {
        let aig = csa_multiplier(bits).aig;
        let shard = router.shard_of(&aig);
        if by_shard[shard].is_none() {
            by_shard[shard] = Some(aig);
        }
    }
    let s0 = by_shard[0].take().expect("a subject routing to shard 0");
    let s1 = by_shard[1].take().expect("a subject routing to shard 1");

    // Each forward sleeps 100ms, so the 2-slot queues stay backed up and
    // the 8-job slice for shard 1 must wait through several waves.
    let _guard = gamora_fault::arm("forward:delay(100000)");
    let mut jobs = vec![(s0, AnalysisKind::Classify); 2];
    jobs.extend(vec![(s1, AnalysisKind::Classify); 8]);

    let start = Instant::now();
    std::thread::scope(|scope| {
        let router = &router;
        let burst = scope.spawn(move || router.submit_all(jobs));
        // Let the burst admit shard 0 and block mid-wave on shard 1,
        // then begin shutdown under it.
        std::thread::sleep(Duration::from_millis(80));
        router.begin_shutdown();
        let result = burst.join().expect("burst thread");
        assert_eq!(
            result.expect_err("the interrupted burst reports an error"),
            ServeError::JobDropped,
            "a burst aborted by shutdown is reported dropped, not hung"
        );
    });
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "the aborted burst must return promptly (took {elapsed:?})"
    );

    let stats = router.shutdown();
    assert!(
        stats.jobs_dropped > 0,
        "the retracted waves are accounted as dropped: {stats:?}"
    );
    assert_balanced(&stats);
}

/// The retry policy's deadline bounds the total wait: against a fleet
/// wedged by an injected forward delay, a deadline turns what would be
/// an unbounded retry loop into a prompt, typed resolution for every
/// job.
#[test]
fn retry_deadline_bounds_total_wait() {
    let router = ShardRouter::start(
        Arc::new(tiny_trained()),
        1,
        ServeConfig {
            max_batch: 1,
            workers: 1,
            cache_capacity: 16,
            queue_capacity: 1,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    let subject = csa_multiplier(5).aig;
    let _guard = gamora_fault::arm("forward:delay(200000)");

    // Wedge the shard: one job on the worker (sleeping 200ms per
    // forward), one filling the single queue slot.
    let wedge: Vec<_> = (0..2)
        .map(|_| {
            router
                .submit(subject.clone(), AnalysisKind::Classify)
                .expect("wedge admitted")
        })
        .collect();

    let start = Instant::now();
    let policy = RetryPolicy {
        max_retries: 50, // without the deadline this budget would retry for minutes
        backoff_micros: 50_000,
        deadline: Some(start + Duration::from_millis(150)),
    };
    let outcomes =
        router.submit_all_retrying(vec![(subject.clone(), AnalysisKind::Classify); 4], &policy);
    let elapsed = start.elapsed();

    assert!(
        elapsed < Duration::from_secs(5),
        "the 150ms deadline must bound the retry loop (took {elapsed:?})"
    );
    let mut gave_up = 0;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(_) => {}
            Err(ServeError::JobDropped) | Err(ServeError::DeadlineExpired) => gave_up += 1,
            Err(e) => panic!("job {i}: unexpected outcome {e}"),
        }
    }
    assert!(
        gave_up > 0,
        "a wedged single-slot shard cannot serve all four extra jobs within 150ms"
    );

    for t in wedge {
        t.wait_timeout(Duration::from_secs(60))
            .expect("the wedge jobs themselves are served");
    }
    let stats = router.shutdown();
    assert_balanced(&stats);
}
