//! End-to-end test of the `gamora` binary: a model trained and saved by
//! one process is reloaded by a fresh process (the binary), serves AIGER
//! submissions with *exactly* the in-process evaluation scores, and
//! answers repeated submissions from the structural-hash cache without
//! additional forward passes.

use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_aig::aiger;
use gamora_circuits::csa_multiplier;
use std::path::PathBuf;
use std::process::Command;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gamora-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn train_small() -> GamoraReasoner {
    let train: Vec<_> = [3usize, 4].iter().map(|&b| csa_multiplier(b)).collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 3,
            hidden: 16,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &refs,
        &TrainConfig {
            epochs: 120,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

#[test]
fn saved_model_served_by_binary_reproduces_in_process_scores() {
    let dir = tmpdir("infer");
    let reasoner = train_small();

    // In-process reference score on a held-out workload.
    let subject = csa_multiplier(6);
    let expected = reasoner.clone().evaluate(&subject.aig);

    // Persist the model and the workload.
    let model_path = dir.join("model.gsnap");
    reasoner.save(&model_path).unwrap();
    let aag_path = dir.join("subject.aag");
    let mut buf = Vec::new();
    aiger::write_ascii(&subject.aig, &mut buf).unwrap();
    std::fs::write(&aag_path, &buf).unwrap();

    // Fresh process: serve the same file twice through the binary.
    let out = Command::new(env!("CARGO_BIN_EXE_gamora"))
        .args(["infer", "--score", "--compact", "--batch", "4", "--model"])
        .arg(&model_path)
        .arg(&aag_path)
        .arg(&aag_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "infer failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();

    // Exact score reproduction: the binary's mean accuracy string is the
    // shortest-roundtrip rendering of the identical f64.
    let mean_field = format!("\"mean\":{}", render_f64(expected.mean()));
    assert_eq!(
        stdout.matches(&mean_field).count(),
        2,
        "both submissions must report exactly the in-process mean accuracy \
         ({mean_field}); got: {stdout}"
    );

    // Cache behaviour: first submission misses, the repeat hits, and the
    // whole run needs exactly one forward pass.
    assert!(stdout.contains("\"cache_hit\":false"), "{stdout}");
    assert!(stdout.contains("\"cache_hit\":true"), "{stdout}");
    assert!(stdout.contains("\"forward_passes\":1"), "{stdout}");
    assert!(stdout.contains("\"cache_hits\":1"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Mirrors the binary's JSON number rendering (integers without a point).
fn render_f64(n: f64) -> String {
    if n == n.trunc() && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[test]
fn corrupt_snapshot_is_rejected_by_the_binary() {
    let dir = tmpdir("corrupt");
    let model_path = dir.join("model.gsnap");
    train_small().save(&model_path).unwrap();

    let mut bytes = std::fs::read(&model_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&model_path, &bytes).unwrap();

    let aag_path = dir.join("x.aag");
    let mut buf = Vec::new();
    aiger::write_ascii(&csa_multiplier(3).aig, &mut buf).unwrap();
    std::fs::write(&aag_path, &buf).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_gamora"))
        .args(["infer", "--model"])
        .arg(&model_path)
        .arg(&aag_path)
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "corrupt snapshot must not serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt") || stderr.contains("checksum"),
        "diagnostic should name the corruption: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_serve_reports_cold_and_hot_throughput() {
    let dir = tmpdir("bench");
    let model_path = dir.join("model.gsnap");
    train_small().save(&model_path).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_gamora"))
        .args([
            "bench-serve",
            "--bits",
            "4",
            "--count",
            "8",
            "--batches",
            "1,4",
            "--model",
        ])
        .arg(&model_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "bench-serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"cold_aigs_per_sec\""), "{stdout}");
    assert!(stdout.contains("\"hot_aigs_per_sec\""), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `--quant` end to end: bench-serve reports the accuracy-vs-size
/// sidebar with near-total argmax agreement, and `infer --quant` serves
/// the same files successfully with the quantised flag set.
#[test]
fn quant_switch_reports_agreement_and_serves() {
    let dir = tmpdir("quant");
    let model_path = dir.join("model.gsnap");
    train_small().save(&model_path).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_gamora"))
        .args([
            "bench-serve",
            "--quant",
            "--bits",
            "6",
            "--count",
            "8",
            "--batches",
            "1,4",
            "--model",
        ])
        .arg(&model_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "bench-serve --quant failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"quantised\": true"), "{stdout}");
    assert!(stdout.contains("\"argmax_agreement\""), "{stdout}");
    assert!(stdout.contains("\"compression\""), "{stdout}");
    // Parse the mean agreement out of the report — scoped to the
    // argmax_agreement object, since stage-latency summaries elsewhere in
    // the report also carry "mean" fields. The quickly trained CLI test
    // model leaves some nodes near the decision boundary, so this smoke
    // test only requires near-total agreement; the >= 99.9% criterion on
    // a properly trained model is enforced by the `quant_equivalence`
    // release guard.
    let mean = stdout
        .split("\"argmax_agreement\"")
        .nth(1)
        .and_then(|s| s.split("\"mean\":").nth(1))
        .and_then(|s| {
            s.split(['}', ','])
                .next()
                .and_then(|v| v.trim().parse::<f64>().ok())
        })
        .expect("mean agreement in report");
    assert!(
        mean >= 0.99,
        "quantised argmax agreement {mean} collapsed: {stdout}"
    );

    let aag_path = dir.join("subject.aag");
    let mut buf = Vec::new();
    aiger::write_ascii(&csa_multiplier(5).aig, &mut buf).unwrap();
    std::fs::write(&aag_path, &buf).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_gamora"))
        .args(["infer", "--quant", "--compact", "--model"])
        .arg(&model_path)
        .arg(&aag_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "infer --quant failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"quantised\":true"), "{stdout}");
    assert!(stdout.contains("\"forward_passes\":1"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_subcommand_writes_a_loadable_snapshot() {
    let dir = tmpdir("train");
    let model_path = dir.join("model.gsnap");
    let out = Command::new(env!("CARGO_BIN_EXE_gamora"))
        .args([
            "train", "--bits", "3", "--epochs", "10", "--depth", "2x8", "--quiet", "--out",
        ])
        .arg(&model_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reasoner = GamoraReasoner::load(&model_path).expect("snapshot loads");
    assert_eq!(
        reasoner.config().depth,
        ModelDepth::Custom {
            layers: 2,
            hidden: 8
        }
    );

    std::fs::remove_dir_all(&dir).ok();
}
