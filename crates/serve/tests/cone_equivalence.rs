//! Release guard for the cone-level prediction cache (PR 9).
//!
//! The cone tier's soundness contract is layered: equal WL-refined cone
//! keys imply bit-identical trunk embedding rows (`Graph::refine_keys` +
//! `MultiTaskSage::infer_rows_observed`, guarded bitwise in gamora-gnn),
//! so a cone-served row must decode to exactly the argmax the model
//! would have produced cold. This suite checks that end to end through
//! the real server:
//!
//! 1. A deterministic overlap corpus (shared arithmetic cores, unique
//!    disconnected gadgets) is served twice over — every submission
//!    misses the whole-graph tiers, the cone tier serves the shared
//!    cores from the second sighting of each core onward — and every
//!    answer must be argmax-identical to a cache-off cold `predict`.
//! 2. A property test feeds randomly overlapping subjects, including
//!    gadgets welded *onto* random core nodes (which changes those
//!    nodes' fanout context: the bidirectional GNN sees it, so the cone
//!    key must change and a stale cached row must never be served).
//! 3. The cone-tier probe path (key computation + cache probe) must be
//!    allocation-free after warmup, like every other serve hot path.
//!
//! Logit-level closeness is implied: the gnn-level row-masked guard is
//! bit-exact, which is stronger than the 1e-4 tolerance the acceptance
//! criterion asks for.

use gamora::dataset::assemble_batch_into;
use gamora::{
    BatchScratch, Direction, FeatureMode, GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig,
};
use gamora_aig::{Aig, NodeId};
use gamora_circuits::{csa_multiplier, dadda_multiplier};
use gamora_serve::cache::{pack_prediction, ConeCache, ConeState};
use gamora_serve::scheduler::{AnalysisKind, ServeConfig, Server};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Serialises the allocation-measuring test (one process-wide counter).
static TEST_LOCK: Mutex<()> = Mutex::new(());

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Set only on the measuring thread, only around the measured window.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_here() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

/// System allocator wrapper counting allocation calls on the opted-in
/// thread (server worker threads never opt in, so the e2e tests in this
/// binary run unobserved).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One shared trained model for every test in this binary: serving is
/// `&self` behind an `Arc`, so each test spins its own server over it.
fn trained() -> Arc<GamoraReasoner> {
    static MODEL: OnceLock<Arc<GamoraReasoner>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let m = csa_multiplier(3);
        let mut reasoner = GamoraReasoner::new(ReasonerConfig {
            depth: ModelDepth::Custom {
                layers: 2,
                hidden: 8,
            },
            ..ReasonerConfig::default()
        });
        reasoner.fit(
            &[&m.aig],
            &TrainConfig {
                epochs: 15,
                log_every: 0,
                ..TrainConfig::default()
            },
        );
        Arc::new(reasoner)
    }))
}

fn cone_server(model: &Arc<GamoraReasoner>) -> Server {
    Server::start_shared(
        Arc::clone(model),
        ServeConfig {
            max_batch: 1,
            cone_capacity: 1 << 16,
            ..ServeConfig::default()
        },
    )
}

/// Serves `aig` and requires the answer to be argmax-identical to the
/// cache-off cold prediction.
fn serve_and_check(server: &Server, model: &GamoraReasoner, aig: &Aig, ctx: &str) {
    let out = server
        .submit(aig.clone(), AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect("served");
    let cold = model.predict(aig);
    assert_eq!(
        out.predictions.root_leaf, cold.root_leaf,
        "{ctx}: root/leaf"
    );
    assert_eq!(out.predictions.is_xor, cold.is_xor, "{ctx}: xor");
    assert_eq!(out.predictions.is_maj, cold.is_maj, "{ctx}: maj");
}

/// Deterministic overlap corpus: subject `i` is a csa (even) or dadda
/// (odd) core plus a unique *disconnected* gadget — so no whole-graph
/// tier can hit, while the cores' cones repeat exactly.
fn overlap_subject(bits: usize, i: usize) -> Aig {
    let mut aig = if i.is_multiple_of(2) {
        csa_multiplier(bits).aig
    } else {
        dadda_multiplier(bits).aig
    };
    let a = aig.add_input().lit();
    let b = aig.add_input().lit();
    let mut t = aig.and(a, b);
    for _ in 0..i {
        t = aig.and(t, b);
    }
    aig.add_output(t);
    aig
}

/// The headline equivalence + hit-rate guard: a 8-subject overlap corpus
/// is served through the cone tier; every answer matches the cold model
/// bit-for-bit, every submission misses the whole-graph tiers, and from
/// the second sighting of each core architecture onward a majority of
/// nodes is served from the cone tier (the acceptance criterion's
/// ">= 50% of nodes on 2nd+ submissions").
#[test]
fn cone_served_corpus_is_argmax_identical_and_majority_hit() {
    let model = trained();
    let server = cone_server(&model);
    let subjects: Vec<Aig> = (0..8).map(|i| overlap_subject(4, i)).collect();

    let (mut warm_probed, mut warm_hit) = (0u64, 0u64);
    let (mut prev_probed, mut prev_hit) = (0u64, 0u64);
    for (i, aig) in subjects.iter().enumerate() {
        serve_and_check(&server, &model, aig, &format!("subject {i}"));
        let snap = server.metrics();
        let probed = snap.counter("cache_cone_rows_probed_total");
        let hit = snap.counter("cache_cone_rows_hit_total");
        // Both core architectures are in the tier after two submissions.
        if i >= 2 {
            warm_probed += probed - prev_probed;
            warm_hit += hit - prev_hit;
        }
        (prev_probed, prev_hit) = (probed, hit);
    }
    let stats = server.shutdown();
    assert_eq!(
        stats.cache_hits, 0,
        "unique gadgets must defeat the whole-graph tiers"
    );
    assert!(
        warm_hit * 2 >= warm_probed && warm_probed > 0,
        "2nd+ sightings must be majority cone-served (hit {warm_hit} of {warm_probed} rows)"
    );
}

/// Splitmix64: deterministic per-case corpus derivation.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random overlapping subject: a small csa/dadda core with a random
/// AND-chain gadget that is either disconnected (fresh inputs — maximal
/// cone overlap with other subjects of the same core) or welded onto
/// random existing nodes (changes the fanout context of core nodes: the
/// cone keys there must change, so serving from the tier must not reuse
/// the unwelded variant's rows).
fn random_subject(state: &mut u64) -> Aig {
    let bits = 3 + (mix(state) % 2) as usize;
    let mut aig = if mix(state).is_multiple_of(2) {
        csa_multiplier(bits).aig
    } else {
        dadda_multiplier(bits).aig
    };
    let chain = 1 + (mix(state) % 4) as usize;
    let mut t = if mix(state).is_multiple_of(2) {
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        aig.and(a, b)
    } else {
        // Weld onto two random existing nodes (skip the constant node 0).
        let n = aig.num_nodes() as u64;
        let a = NodeId::new((1 + mix(state) % (n - 1)) as u32).lit();
        let b = NodeId::new((1 + mix(state) % (n - 1)) as u32).lit();
        aig.and(a, b)
    };
    for _ in 0..chain {
        let n = aig.num_nodes() as u64;
        let side = NodeId::new((1 + mix(state) % (n - 1)) as u32).lit();
        let side = if mix(state).is_multiple_of(2) {
            !side
        } else {
            side
        };
        t = aig.and(t, side);
    }
    aig.add_output(t);
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any random sequence of overlapping subjects served through the
    /// cone tier is argmax-identical to cold cache-off predictions —
    /// in particular, a welded gadget variant must never be answered
    /// with rows cached from its unwelded sibling.
    #[test]
    fn randomly_overlapping_subjects_serve_exactly(seed in any::<u64>()) {
        let model = trained();
        let server = cone_server(&model);
        let mut state = seed;
        for i in 0..5 {
            let aig = random_subject(&mut state);
            serve_and_check(&server, &model, &aig, &format!("seed {seed} subject {i}"));
        }
        let snap = server.metrics();
        server.shutdown();
        // The run must actually exercise the tier (probes happen on
        // every whole-graph miss when the tier is on).
        prop_assert!(snap.counter("cache_cone_rows_probed_total") > 0);
    }
}

/// The cone probe path — per-batch key computation (descriptors + WL
/// refinement) and the per-row cache probe — must not allocate once the
/// worker-owned scratch is warm: it runs on every batch whenever the
/// tier is enabled, including pure-miss traffic.
#[test]
fn cone_key_computation_and_probe_are_allocation_free_after_warmup() {
    let _guard = TEST_LOCK.lock().unwrap();
    let m3 = csa_multiplier(3);
    let m4 = csa_multiplier(4);
    let aigs: Vec<&Aig> = vec![&m4.aig, &m3.aig];
    let mut ws = BatchScratch::default();
    assemble_batch_into(
        &aigs,
        FeatureMode::StructuralFunctional,
        Direction::Bidirectional,
        &mut ws,
    );
    let total = ws.graph().num_nodes();
    let mut cone = ConeState::default();
    let mut cache = ConeCache::new(1 << 12);

    // Warmup: keys/sims/WL scratch grow to the batch size, miss_rows to
    // its high-water mark (every row misses the empty cache), and the
    // cache absorbs every key.
    cone.compute_keys(&aigs, ws.graph(), 3);
    cone.miss_rows.clear();
    for r in 0..total {
        if cache.probe(cone.key(r)).is_none() {
            cone.miss_rows.push(r as u32);
        }
    }
    assert_eq!(cone.miss_rows.len(), total, "empty tier: every row misses");
    for r in 0..total {
        cache.insert(cone.key(r), pack_prediction(1, false, true));
    }

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    for _ in 0..32 {
        cone.compute_keys(&aigs, ws.graph(), 3);
        cone.miss_rows.clear();
        for r in 0..total {
            if cache.probe(cone.key(r)).is_none() {
                cone.miss_rows.push(r as u32);
            }
        }
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state cone key computation + probe must not allocate"
    );
    assert!(cone.miss_rows.is_empty(), "warmed tier: every row hits");
}
