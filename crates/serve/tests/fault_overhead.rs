//! Release-profile guard: the PR-8 fail-point subsystem must be free
//! when disarmed — chaos instrumentation that taxes production serving
//! would never be left compiled in, and ours is.
//!
//! Same two-angle methodology as `metrics_overhead.rs`:
//!
//! 1. A micro-bound on one disarmed [`gamora_fault::hit`] — a single
//!    relaxed atomic load and a branch — which must stay in the
//!    single-digit-nanosecond range.
//! 2. An end-to-end budget: serve a real cold workload, bound the
//!    number of fail-point checks the run performed from its own stats
//!    (one admission check per submission, one check per stage per
//!    batch), price them with the measured per-check cost, and require
//!    the total disarmed-chaos bill to be under 1% of the serve wall
//!    time — the CI form of the "disabled fail points within noise of
//!    the PR-7 baseline" acceptance criterion.
//!
//! Debug builds keep the accounting compiling but skip the wall-time
//! ratio: unoptimised atomics are not what ships.

use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_circuits::csa_multiplier;
use gamora_fault::{FaultPoint, ALL_POINTS};
use gamora_serve::scheduler::{AnalysisKind, ServeConfig, Server};
use std::time::Instant;

fn tiny_trained() -> GamoraReasoner {
    let m = csa_multiplier(4);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 15,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

/// Mean cost of one disarmed fail-point check, cycling through every
/// point so no single atomic monopolises a register. Measured over
/// enough iterations to swamp timer resolution.
fn measured_check_nanos() -> f64 {
    assert!(
        !gamora_fault::armed(),
        "the overhead guard measures the DISARMED path"
    );
    // Warm the enabled-flag cache line.
    for _ in 0..1024 {
        let _ = gamora_fault::hit(FaultPoint::GnnForward);
    }
    const ITERS: u64 = 4_000_000;
    let mut ok = 0u64;
    let start = Instant::now();
    for i in 0..ITERS {
        let point = ALL_POINTS[(i % ALL_POINTS.len() as u64) as usize];
        // Keep the result observable so the loop cannot be elided.
        ok += gamora_fault::hit(point).is_ok() as u64;
    }
    let elapsed = start.elapsed();
    assert_eq!(ok, ITERS, "disarmed checks always pass");
    elapsed.as_nanos() as f64 / ITERS as f64
}

/// One disarmed check is a relaxed load plus a branch: nanoseconds, not
/// microseconds — checking may never rival the stages it gates.
#[test]
fn disarmed_check_cost_stays_nanoscale() {
    let per_op = measured_check_nanos();
    // Release: a relaxed load — give a wide berth for slow CI steppings.
    // Debug: unoptimised but still bounded, catching a pathological
    // (locking, allocating) regression in plain `cargo test` too.
    let bound = if cfg!(debug_assertions) {
        1_000.0
    } else {
        50.0
    };
    assert!(
        per_op < bound,
        "one disarmed fail-point check averaged {per_op:.1} ns (bound {bound} ns): \
         the relaxed-load fast path has regressed"
    );
}

/// End-to-end: price every fail-point check a cold serve run performed
/// and require the disarmed-chaos bill to stay under 1% of the serve
/// wall time.
#[test]
fn disarmed_fault_bill_is_within_one_percent_of_serving() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            cache_capacity: 64, // hashing on: the hash/cache points are checked too
            ..ServeConfig::default()
        },
    );
    let subjects: Vec<_> = (3..=6).map(|b| csa_multiplier(b).aig).collect();

    let start = Instant::now();
    let tickets: Vec<_> = (0..64)
        .map(|i| {
            server
                .submit(subjects[i % subjects.len()].clone(), AnalysisKind::Classify)
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        t.wait().expect("served");
    }
    let serve_nanos = start.elapsed().as_nanos() as f64;

    let stats = server.shutdown();
    // Upper bound on checks performed: one admission gate per
    // submission, and one check per serve stage (hash, cache, assemble,
    // forward, split) per batch — counted generously per point.
    let checks = stats.jobs_submitted + stats.batches * ALL_POINTS.len() as u64;
    assert!(checks >= 64, "a 64-job run passes at least its admissions");

    if cfg!(debug_assertions) {
        // Debug forwards are orders of magnitude slower than release but
        // atomics are not: the ratio below is only meaningful optimised.
        return;
    }
    let bill_nanos = checks as f64 * measured_check_nanos();
    let fraction = bill_nanos / serve_nanos;
    assert!(
        fraction < 0.01,
        "disarmed fail-point bill {bill_nanos:.0} ns ({checks} checks) is \
         {:.3}% of the {serve_nanos:.0} ns serve run (bound 1%)",
        fraction * 100.0
    );
}
