//! Release-mode large-subject smoke guard: a 64-bit multiplier (~41k
//! nodes, well above `parallel`'s per-thread row cutoff) travels the full
//! serve path — ingress, batch assembly through the sectioned CSR build,
//! the tiled forward pass, prediction split — and the answers are
//! **bit-identical** to a direct in-process `predict`. On multi-core CI
//! runners the server side engages the scoped-thread fan-out while the
//! direct reference can be pinned serial, so this doubles as an
//! end-to-end parallel/serial equivalence check at production scale.
//!
//! Debug-profile forwards at this size are painfully slow on the 1-core
//! runner, so the test body only runs under `--release` (CI invokes it in
//! the release hot-path guard block).

use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_circuits::{generate_multiplier, MultiplierKind};
use gamora_serve::scheduler::{AnalysisKind, ServeConfig, Server};
use std::sync::Arc;

fn tiny_trained() -> GamoraReasoner {
    let m = generate_multiplier(MultiplierKind::Csa, 3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 15,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

#[test]
fn sixty_four_bit_multiplier_end_to_end_matches_direct_predict() {
    if cfg!(debug_assertions) {
        eprintln!("large_subject: skipped in debug profile (release-only smoke guard)");
        return;
    }

    let reasoner = Arc::new(tiny_trained());
    let subject = generate_multiplier(MultiplierKind::Csa, 64);
    assert!(
        subject.aig.num_nodes() > 16_384,
        "subject must exceed the parallel row cutoff (got {} nodes)",
        subject.aig.num_nodes()
    );

    // Direct reference, kernels pinned serial on this thread: the ground
    // truth the (possibly fanned-out) server must reproduce bitwise.
    let prev_cap = gamora_gnn::parallel::intra_threads();
    gamora_gnn::parallel::set_intra_threads(1);
    let expected = reasoner.predict(&subject.aig);
    gamora_gnn::parallel::set_intra_threads(prev_cap);
    assert_eq!(expected.num_nodes(), subject.aig.num_nodes());

    // Serve path: cache off so every submission pays a real cold miss,
    // max_batch 2 so the pair below merges into one sectioned batch
    // (2 x ~41k-node sections). intra_threads 0 = auto machine budget.
    let server = Server::start_shared(
        Arc::clone(&reasoner),
        ServeConfig {
            max_batch: 2,
            workers: 1,
            cache_capacity: 0,
            linger_micros: 2_000,
            intra_threads: 0,
            ..ServeConfig::default()
        },
    );
    let outputs = server
        .submit_all(vec![
            (subject.aig.clone(), AnalysisKind::Classify),
            (subject.aig.clone(), AnalysisKind::Classify),
        ])
        .expect("large-subject submissions complete");

    assert_eq!(outputs.len(), 2);
    for (i, out) in outputs.iter().enumerate() {
        assert!(!out.cache_hit, "submission {i} must be a cold miss");
        assert_eq!(
            out.predictions, expected,
            "submission {i}: served predictions must be bit-identical to \
             the serial in-process reference"
        );
    }
    server.shutdown();
}
