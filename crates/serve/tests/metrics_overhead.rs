//! Release-profile guard: the PR-6 observability layer must be close to
//! free on the serve hot path.
//!
//! Two angles, both run under `--release` in CI:
//!
//! 1. A micro-bound on the primitive recording operations — one
//!    `Histogram::record` / `Counter::inc` is a bucket-index computation
//!    plus relaxed atomic adds, and must stay in the nanosecond range.
//! 2. An end-to-end budget: serve a real cold workload through the
//!    (always-instrumented) scheduler, count every metric recording the
//!    run actually performed from the final snapshot, price it with the
//!    measured per-record cost, and require the total instrumentation
//!    bill to be a small fraction of the serve wall time. This is the
//!    in-process form of the "instrumented throughput within a few
//!    percent of PR 5" acceptance bar — expressed relatively so it holds
//!    on any machine CI lands on.
//!
//! Debug builds keep the tests compiling and the accounting correct but
//! use loose bounds / skip the wall-time comparison: unoptimised atomics
//! and forwards are not what ships.

use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_circuits::csa_multiplier;
use gamora_obs::{Counter, Histogram, MetricSnapshot, Snapshot};
use gamora_serve::scheduler::{AnalysisKind, ServeConfig, Server};
use std::time::Instant;

fn tiny_trained() -> GamoraReasoner {
    let m = csa_multiplier(4);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 15,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

/// Mean cost of one `Histogram::record` across the value range the serve
/// path feeds it (sub-microsecond spans up to multi-second latencies),
/// plus one `Counter::inc`. Measured over enough iterations to swamp
/// timer resolution.
fn measured_record_nanos() -> f64 {
    let h = Histogram::new();
    let c = Counter::new();
    // Warm the cache lines.
    for v in 0..1024u64 {
        h.record(v);
        c.inc();
    }
    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for i in 0..ITERS {
        // Vary the value so the bucket-index path is not branch-predicted
        // into irrelevance; spans several histogram decades.
        h.record(i.wrapping_mul(2654435761) >> 12);
        c.inc();
    }
    let elapsed = start.elapsed();
    // Keep the work observable so the loop cannot be optimised away.
    assert_eq!(h.snapshot().count(), ITERS + 1024);
    assert_eq!(c.get(), ITERS + 1024);
    elapsed.as_nanos() as f64 / ITERS as f64
}

/// One histogram record + one counter inc must cost nanoseconds, not
/// microseconds: recording may never rival the spans it measures.
#[test]
fn primitive_recording_cost_stays_nanoscale() {
    let per_op = measured_record_nanos();
    // Release: a record+inc pair is a handful of relaxed atomic RMWs —
    // give a wide berth for slow CI steppings. Debug: unoptimised but
    // still bounded, so a pathological (locking, allocating) regression
    // is caught in plain `cargo test` too.
    let bound = if cfg!(debug_assertions) {
        5_000.0
    } else {
        400.0
    };
    assert!(
        per_op < bound,
        "histogram record + counter inc averaged {per_op:.0} ns/op (bound {bound} ns): \
         the lock-free recording path has regressed"
    );
}

/// Total number of recording operations a serve run performed, recovered
/// from its own snapshot: every histogram observation and every counter
/// increment is one primitive record. The row-granular cone-tier
/// counters are the exception — the scheduler bumps each with a single
/// bulk `add` per batch phase, so their final values overstate the op
/// count by the batch's node count. Each phase also records exactly one
/// phase-latency histogram observation, so the true op count is
/// recovered from those: two adds per probe phase (rows probed + rows
/// hit) and one per insert phase.
fn total_recordings(snapshot: &Snapshot) -> u64 {
    let per_value: u64 = snapshot
        .iter()
        .map(|(name, m)| match m {
            MetricSnapshot::Counter(n) => {
                if name.starts_with("cache_cone_rows_") || name == "cache_cone_inserts_total" {
                    0 // bulk-added; priced per phase below
                } else {
                    *n
                }
            }
            // Gauges are set/max'd roughly once per admission; counting
            // one op per final value is the cheap upper-bound stand-in.
            MetricSnapshot::Gauge(n) => (*n).min(1),
            MetricSnapshot::Histogram(h) => h.count(),
        })
        .sum();
    let probe_phases = snapshot
        .histogram("cache_cone_probe_micros")
        .map_or(0, |h| h.count());
    let insert_phases = snapshot
        .histogram("cache_cone_insert_micros")
        .map_or(0, |h| h.count());
    per_value + 2 * probe_phases + insert_phases
}

/// End-to-end: price the instrumentation a cold serve run actually did
/// and require it to be a small fraction of the serve wall time. With
/// per-layer timing enabled (the most record-heavy configuration), the
/// bill must still stay under 3% — the CI form of the "instrumented
/// throughput within a few percent of the uninstrumented baseline"
/// acceptance criterion.
#[test]
fn instrumentation_bill_is_within_three_percent_of_serving() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            cache_capacity: 0, // all-miss at the whole-graph tiers, like a cold bench
            // The cone tier is the most record-heavy path (per-batch key,
            // probe and insert timings on top of the per-layer forward
            // stages): its recording cost must fit the same 3% bill.
            cone_capacity: 1 << 16,
            layer_timing: true,
            ..ServeConfig::default()
        },
    );
    let subjects: Vec<_> = (3..=6).map(|b| csa_multiplier(b).aig).collect();

    let start = Instant::now();
    let tickets: Vec<_> = (0..64)
        .map(|i| {
            server
                .submit(subjects[i % subjects.len()].clone(), AnalysisKind::Classify)
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        t.wait().expect("served");
    }
    let serve_nanos = start.elapsed().as_nanos() as f64;

    let snapshot = server.metrics();
    server.shutdown();
    let recordings = total_recordings(&snapshot);
    assert!(
        recordings >= 64 * 4,
        "a 64-job instrumented run must have recorded per-job stages (got {recordings})"
    );

    if cfg!(debug_assertions) {
        // Debug forwards are orders of magnitude slower than release but
        // atomics are not: the ratio below is only meaningful optimised.
        return;
    }
    let bill_nanos = recordings as f64 * measured_record_nanos();
    let fraction = bill_nanos / serve_nanos;
    assert!(
        fraction < 0.03,
        "instrumentation bill {bill_nanos:.0} ns ({recordings} recordings) is \
         {:.2}% of the {serve_nanos:.0} ns serve run (bound 3%)",
        fraction * 100.0
    );
}
