//! Overload, deadline and shutdown end-to-end tests for the bounded
//! serving ingress: a hammered bounded queue sheds load promptly instead
//! of growing, admitted jobs always complete, expired jobs never cost a
//! forward pass, and no client ever hangs — the regression suite for the
//! serve crate's production-ingress guarantees.
//!
//! Timing-sensitive (linger-window) behaviour lives in the scheduler's
//! unit tests with generous margins; CI additionally runs this file under
//! `--release` because debug-profile forwards on the 1-core runner are
//! slow enough to distort queueing behaviour.

use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_circuits::csa_multiplier;
use gamora_serve::scheduler::{
    AnalysisKind, JobTicket, ServeConfig, ServeError, Server, SubmitError,
};
use std::time::{Duration, Instant};

fn tiny_trained() -> GamoraReasoner {
    let m = csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 15,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    reasoner
}

/// Fill a bounded queue 4x over with `try_submit`: rejections come back
/// promptly (`Overloaded`, never a block), the queue's high-water mark
/// respects the bound (memory stays bounded), and every admitted job
/// still completes.
#[test]
fn saturated_bounded_queue_sheds_load_and_completes_admitted_jobs() {
    const QUEUE_CAP: usize = 4;
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 2,
            workers: 1,
            cache_capacity: 0, // one forward pass per job: the queue really backs up
            queue_capacity: QUEUE_CAP,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    let subject = csa_multiplier(6).aig;

    let attempts = 4 * QUEUE_CAP * 4; // 4x oversubmission, several waves
    let mut tickets: Vec<JobTicket> = Vec::new();
    let mut rejected = 0usize;
    let submit_loop = Instant::now();
    for _ in 0..attempts {
        match server.try_submit(subject.clone(), AnalysisKind::Classify) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let submit_elapsed = submit_loop.elapsed();

    assert!(
        rejected > 0,
        "hammering a {QUEUE_CAP}-slot queue with {attempts} jobs must shed load"
    );
    // "Promptly": rejections are O(1) admission decisions, not waits. The
    // whole loop — including the rejections — must finish in far less
    // time than serving even one queue's worth of forwards.
    assert!(
        submit_elapsed < Duration::from_secs(2),
        "try_submit must not block: {attempts} attempts took {submit_elapsed:?}"
    );

    // Every admitted job completes; nobody hangs.
    for (i, ticket) in tickets.iter().enumerate() {
        ticket
            .wait_timeout(Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("admitted job {i} did not complete: {e}"));
    }

    let stats = server.shutdown();
    assert!(
        stats.peak_queued <= QUEUE_CAP as u64,
        "queue bound violated: peak {} > capacity {QUEUE_CAP}",
        stats.peak_queued
    );
    assert_eq!(stats.rejected_overload, rejected as u64);
    assert_eq!(stats.jobs_submitted, tickets.len() as u64);
    assert_eq!(stats.jobs, tickets.len() as u64, "all admitted jobs served");
    assert_eq!(
        stats.jobs_submitted,
        stats.jobs + stats.jobs_expired + stats.jobs_dropped,
        "every admitted job accounted exactly once"
    );
}

/// An expired job is rejected with `DeadlineExpired` and never reaches
/// the model: the forward-pass counter proves no compute was wasted.
#[test]
fn expired_job_is_rejected_without_a_forward_pass() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 1, // the worker picks jobs up one at a time
            workers: 1,
            cache_capacity: 0,
            queue_capacity: 0,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    // Occupy the worker with a real job, then queue a job whose deadline
    // is microseconds away: it expires while the first forward runs.
    let busy = server
        .submit(csa_multiplier(8).aig, AnalysisKind::Classify)
        .expect("admitted");
    let doomed = server
        .submit_within(
            csa_multiplier(6).aig,
            AnalysisKind::Classify,
            Duration::from_micros(1),
        )
        .expect("admitted");

    busy.wait().expect("the live job completes");
    assert_eq!(
        doomed.wait().unwrap_err(),
        ServeError::DeadlineExpired,
        "the queued job's deadline passed while the worker was busy"
    );

    let stats = server.shutdown();
    assert_eq!(
        stats.forward_passes, 1,
        "only the live job may run the model — the expired one is free"
    );
    assert_eq!(stats.jobs_expired, 1);
    assert_eq!(stats.jobs, 1);
    assert_eq!(
        stats.jobs_submitted,
        stats.jobs + stats.jobs_expired + stats.jobs_dropped
    );
}

/// A job submitted with a comfortable deadline is served normally — the
/// deadline machinery only bites when time actually runs out.
#[test]
fn unexpired_deadline_jobs_are_served_normally() {
    let server = Server::start(tiny_trained(), ServeConfig::default());
    let out = server
        .submit_within(
            csa_multiplier(4).aig,
            AnalysisKind::Classify,
            Duration::from_secs(600),
        )
        .expect("admitted")
        .wait()
        .expect("served well before the deadline");
    assert!(!out.cache_hit);
    let stats = server.shutdown();
    assert_eq!(stats.jobs_expired, 0);
    assert_eq!(stats.jobs, 1);
}

/// Blocking `submit` on a full queue waits for space instead of failing
/// — and every admitted job is served in order, with the queue bound
/// held throughout.
#[test]
fn blocking_submit_waits_for_space_and_respects_the_bound() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 1,
            workers: 1,
            cache_capacity: 0,
            queue_capacity: 1,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    let subject = csa_multiplier(5).aig;
    let tickets: Vec<JobTicket> = (0..6)
        .map(|i| {
            server
                .submit(subject.clone(), AnalysisKind::Classify)
                .unwrap_or_else(|e| panic!("blocking submit {i} must wait, not fail: {e}"))
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        ticket
            .wait_timeout(Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("job {i} did not complete: {e}"));
    }
    let stats = server.shutdown();
    assert_eq!(stats.jobs, 6);
    assert!(
        stats.peak_queued <= 1,
        "peak {} must respect the 1-slot bound",
        stats.peak_queued
    );
    assert_eq!(stats.rejected_overload, 0, "blocking submits never shed");
}

/// Shutdown racing live submitters: a submitter blocked (or about to
/// submit) when shutdown begins either gets `ShuttingDown` at the door or
/// an admitted job that is drained — never a silently abandoned ticket.
/// This is the regression test for the enqueue-after-shutdown race.
#[test]
fn shutdown_concurrent_with_submitters_leaves_no_hung_client() {
    let server = Server::start(
        tiny_trained(),
        ServeConfig {
            max_batch: 2,
            workers: 1,
            cache_capacity: 0,
            queue_capacity: 2,
            linger_micros: 0,
            ..ServeConfig::default()
        },
    );
    let subject = csa_multiplier(6).aig;
    std::thread::scope(|scope| {
        let server = &server;
        let submitter = scope.spawn(move || {
            let mut tickets = Vec::new();
            loop {
                match server.submit(subject.clone(), AnalysisKind::Classify) {
                    Ok(t) => tickets.push(t),
                    Err(SubmitError::ShuttingDown) => break,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            tickets
        });
        // Let the submitter make progress (including blocking on the full
        // queue), then begin shutdown under its feet.
        std::thread::sleep(Duration::from_millis(50));
        server.begin_shutdown();
        let tickets = submitter.join().expect("submitter thread");
        assert!(
            !tickets.is_empty(),
            "the submitter ran before shutdown and admitted at least one job"
        );
        // Every ticket issued before shutdown resolves: answered (drained)
        // — never hung. JobDropped would mean an admitted job was
        // abandoned, the exact bug this guards against.
        for (i, ticket) in tickets.into_iter().enumerate() {
            ticket
                .wait_timeout(Duration::from_secs(120))
                .unwrap_or_else(|e| panic!("pre-shutdown job {i} was abandoned: {e}"));
        }
    });
    let stats = server.shutdown();
    assert_eq!(
        stats.jobs, stats.jobs_submitted,
        "all admitted jobs drained"
    );
    assert_eq!(stats.jobs_dropped, 0);
}
