//! Release guard for zero-copy snapshot serving (PR 10).
//!
//! An mmap-loaded model borrows every weight tensor straight out of the
//! snapshot mapping; the storage seam promises the kernels cannot tell
//! (same slices, same accumulation order). This suite checks that end to
//! end through the real server: predictions served from an mmap-loaded
//! model must be **bit-identical** to predictions served from the classic
//! owned load — f32 and quantised, single- and multi-worker, shared
//! through one `Arc` — and the cold-start stage metric must surface in
//! the same report plumbing as the per-job stages.

use gamora::snapshot::MmapLoadStats;
use gamora::{GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_aig::Aig;
use gamora_circuits::{csa_multiplier, dadda_multiplier};
use gamora_serve::report::stages_json;
use gamora_serve::scheduler::{AnalysisKind, ServeConfig, Server};
use std::sync::Arc;

fn trained_reasoner(quantised: bool) -> GamoraReasoner {
    let m = csa_multiplier(3);
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 2,
            hidden: 8,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(
        &[&m.aig],
        &TrainConfig {
            epochs: 15,
            log_every: 0,
            ..TrainConfig::default()
        },
    );
    if quantised {
        reasoner.quantise();
    }
    reasoner
}

fn subjects() -> Vec<Aig> {
    vec![
        csa_multiplier(3).aig,
        csa_multiplier(5).aig,
        dadda_multiplier(4).aig,
        csa_multiplier(6).aig,
    ]
}

/// Serves every subject through a real server (cache off: every answer
/// is a forward pass) and returns the outputs' prediction vectors.
fn serve_all(reasoner: Arc<GamoraReasoner>, workers: usize) -> Vec<gamora::Predictions> {
    let server = Server::start_shared(
        reasoner,
        ServeConfig {
            max_batch: 2,
            workers,
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    let outputs = server
        .submit_all(
            subjects()
                .into_iter()
                .map(|a| (a, AnalysisKind::Classify))
                .collect(),
        )
        .expect("serving failed");
    server.shutdown();
    outputs.into_iter().map(|o| o.predictions).collect()
}

fn save_to_temp(reasoner: &GamoraReasoner, tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "gamora-mmap-e2e-{tag}-{}.gsnap",
        std::process::id()
    ));
    reasoner.save(&path).expect("save snapshot");
    path
}

/// The core guarantee: an mmap-loaded model serves bit-identically to an
/// owned load of the same v3 snapshot, for both weight stores, through
/// single- and multi-worker pools sharing one instance.
#[test]
fn mmap_served_predictions_are_bit_identical_to_owned() {
    for quantised in [false, true] {
        let reasoner = trained_reasoner(quantised);
        let path = save_to_temp(&reasoner, if quantised { "quant" } else { "f32" });
        let owned = GamoraReasoner::load(&path).expect("owned load");
        let (mapped, stats) = GamoraReasoner::load_mmap(&path).expect("mmap load");
        std::fs::remove_file(&path).ok();
        assert!(stats.file_bytes > 0);
        if cfg!(all(unix, target_pointer_width = "64")) {
            assert!(stats.mapped, "expected the zero-copy path on this target");
        }

        let baseline = serve_all(Arc::new(owned), 1);
        let via_map = Arc::new(mapped);
        for workers in [1usize, 2] {
            let served = serve_all(Arc::clone(&via_map), workers);
            assert_eq!(
                served, baseline,
                "mmap-served predictions diverged (quantised {quantised}, {workers} workers)"
            );
        }
    }
}

/// The cold-start stage flows through the same plumbing as the per-job
/// stages: `record_snapshot_load` lands in `stage_snapshot_load_micros`,
/// which the stage table keys as `snapshot_load` and the Prometheus text
/// exports by its metric name.
#[test]
fn snapshot_load_stage_surfaces_in_reports() {
    let reasoner = trained_reasoner(false);
    let path = save_to_temp(&reasoner, "stage");
    let (loaded, stats): (GamoraReasoner, MmapLoadStats) =
        GamoraReasoner::load_mmap(&path).expect("mmap load");
    std::fs::remove_file(&path).ok();

    let server = Server::start(loaded, ServeConfig::default());
    server.record_snapshot_load(stats.load_micros.max(1));
    let snapshot = server.metrics();
    server.shutdown();

    let h = snapshot
        .histogram("stage_snapshot_load_micros")
        .expect("snapshot-load stage registered");
    assert_eq!(h.count(), 1, "exactly one load recorded");
    assert!(snapshot.prometheus().contains("stage_snapshot_load_micros"));
    let rendered = stages_json(&snapshot).compact();
    assert!(
        rendered.contains("\"snapshot_load\""),
        "stage table missing snapshot_load: {rendered}"
    );
}
