//! Boolean expression parsing for genlib cell functions.
//!
//! Supports the SIS genlib operator set: `!a` and `a'` for NOT, `*` (or
//! `&`, or juxtaposition) for AND, `+` (or `|`) for OR, `^` for XOR,
//! parentheses, and the constants `CONST0`/`CONST1`.

use std::fmt;

/// A parsed Boolean expression over named pins.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Constant false/true.
    Const(bool),
    /// A pin reference (index into the cell's pin list).
    Pin(usize),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Exclusive or.
    Xor(Box<Expr>, Box<Expr>),
}

/// Error produced when parsing a genlib formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExprError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression parse error: {}", self.message)
    }
}

impl std::error::Error for ParseExprError {}

fn err(message: impl Into<String>) -> ParseExprError {
    ParseExprError {
        message: message.into(),
    }
}

/// Parses a formula; `pins` receives newly seen pin names in first-use
/// order (pre-seed it to pin positions).
pub fn parse_expr(input: &str, pins: &mut Vec<String>) -> Result<Expr, ParseExprError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        pins,
    };
    let e = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(err(format!("trailing input at token {}", p.pos)));
    }
    Ok(e)
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Token {
    Ident(String),
    Not,
    Postfix,
    And,
    Or,
    Xor,
    LParen,
    RParen,
}

fn tokenize(s: &str) -> Result<Vec<Token>, ParseExprError> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '!' => {
                chars.next();
                out.push(Token::Not);
            }
            '\'' => {
                chars.next();
                out.push(Token::Postfix);
            }
            '*' | '&' => {
                chars.next();
                out.push(Token::And);
            }
            '+' | '|' => {
                chars.next();
                out.push(Token::Or);
            }
            '^' => {
                chars.next();
                out.push(Token::Xor);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            c if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(ident));
            }
            other => return Err(err(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    pins: &'a mut Vec<String>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn parse_or(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_xor()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let rhs = self.parse_xor()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Xor) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(&Token::And) => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = Expr::And(Box::new(lhs), Box::new(rhs));
                }
                // Juxtaposition: `a b` or `a (b+c)` means AND.
                Some(Token::Ident(_)) | Some(&Token::LParen) | Some(&Token::Not) => {
                    let rhs = self.parse_unary()?;
                    lhs = Expr::And(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseExprError> {
        if self.peek() == Some(&Token::Not) {
            self.pos += 1;
            let e = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(e)));
        }
        let mut base = self.parse_atom()?;
        while self.peek() == Some(&Token::Postfix) {
            self.pos += 1;
            base = Expr::Not(Box::new(base));
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseExprError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.parse_or()?;
                if self.peek() != Some(&Token::RParen) {
                    return Err(err("missing closing parenthesis"));
                }
                self.pos += 1;
                // Postfix negation can apply to a parenthesised group.
                let mut e = e;
                while self.peek() == Some(&Token::Postfix) {
                    self.pos += 1;
                    e = Expr::Not(Box::new(e));
                }
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "CONST0" => Ok(Expr::Const(false)),
                    "CONST1" => Ok(Expr::Const(true)),
                    _ => {
                        let idx = match self.pins.iter().position(|p| *p == name) {
                            Some(i) => i,
                            None => {
                                self.pins.push(name);
                                self.pins.len() - 1
                            }
                        };
                        Ok(Expr::Pin(idx))
                    }
                }
            }
            other => Err(err(format!("expected atom, found {other:?}"))),
        }
    }
}

impl Expr {
    /// Evaluates to a truth table over `k` pins (pin `i` = variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the expression references a pin `>= k` or `k > 6`.
    pub fn truth_table(&self, k: usize) -> u64 {
        use gamora_aig::tt;
        let m = tt::mask(k);
        match self {
            Expr::Const(false) => 0,
            Expr::Const(true) => m,
            Expr::Pin(i) => {
                assert!(*i < k, "pin {i} out of range");
                tt::var(*i) & m
            }
            Expr::Not(e) => !e.truth_table(k) & m,
            Expr::And(a, b) => a.truth_table(k) & b.truth_table(k),
            Expr::Or(a, b) => a.truth_table(k) | b.truth_table(k),
            Expr::Xor(a, b) => (a.truth_table(k) ^ b.truth_table(k)) & m,
        }
    }

    /// Number of distinct pins referenced.
    pub fn max_pin(&self) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Pin(i) => Some(*i),
            Expr::Not(e) => e.max_pin(),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                match (a.max_pin(), b.max_pin()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_aig::tt;

    fn parse(s: &str) -> (Expr, Vec<String>) {
        let mut pins = Vec::new();
        let e = parse_expr(s, &mut pins).expect(s);
        (e, pins)
    }

    #[test]
    fn simple_operators() {
        let (e, pins) = parse("!(A*B)");
        assert_eq!(pins, vec!["A", "B"]);
        assert_eq!(e.truth_table(2), !tt::AND2 & tt::mask(2));
        let (e, _) = parse("A+B");
        assert_eq!(e.truth_table(2), 0xE);
        let (e, _) = parse("A^B");
        assert_eq!(e.truth_table(2), tt::XOR2);
    }

    #[test]
    fn postfix_negation() {
        let (e, _) = parse("A'*B");
        assert_eq!(e.truth_table(2), 0x4); // !a & b
        let (e, _) = parse("(A+B)'");
        assert_eq!(e.truth_table(2), 0x1); // NOR
    }

    #[test]
    fn juxtaposition_is_and() {
        let (e, pins) = parse("A B + C");
        assert_eq!(pins.len(), 3);
        // ab + c
        let expected = (tt::var(0) & tt::var(1) | tt::var(2)) & tt::mask(3);
        assert_eq!(e.truth_table(3), expected);
    }

    #[test]
    fn precedence_or_lowest() {
        let (e, _) = parse("A + B * C");
        let expected = (tt::var(0) | tt::var(1) & tt::var(2)) & tt::mask(3);
        assert_eq!(e.truth_table(3), expected);
    }

    #[test]
    fn aoi_and_maj() {
        // AOI21: !(A*B + C)
        let (e, _) = parse("!(A*B+C)");
        let expected = !(tt::var(0) & tt::var(1) | tt::var(2)) & tt::mask(3);
        assert_eq!(e.truth_table(3), expected);
        // MAJ3
        let (e, _) = parse("A*B + A*C + B*C");
        assert_eq!(e.truth_table(3), tt::MAJ3);
    }

    #[test]
    fn constants() {
        let (e, pins) = parse("CONST1");
        assert!(pins.is_empty());
        assert_eq!(e.truth_table(0), 1);
        let (e, _) = parse("CONST0");
        assert_eq!(e.truth_table(1), 0);
    }

    #[test]
    fn errors_are_reported() {
        let mut pins = Vec::new();
        assert!(parse_expr("A +", &mut pins).is_err());
        assert!(parse_expr("(A", &mut pins).is_err());
        assert!(parse_expr("A $ B", &mut pins).is_err());
        let e = parse_expr("", &mut pins).unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn shared_pins_reuse_indices() {
        let (e, pins) = parse("A*B + !A*C");
        assert_eq!(pins, vec!["A", "B", "C"]);
        assert_eq!(e.max_pin(), Some(2));
        // mux(a, b, c)
        let expected = (tt::var(0) & tt::var(1) | !tt::var(0) & tt::var(2)) & tt::mask(3);
        assert_eq!(e.truth_table(3), expected);
    }
}
