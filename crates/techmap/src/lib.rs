//! # gamora-techmap
//!
//! Standard-cell technology mapping for AIGs: the substrate behind the
//! paper's Figure 5, which studies how mapping (especially onto a complex
//! library with multi-output adder cells) degrades symbolic reasoning.
//!
//! * [`expr`] — genlib Boolean formula parsing;
//! * [`Library`] — cell libraries, with built-in [`Library::simple`]
//!   (mcnc-style, ≤3-input) and [`Library::complex7nm`] (ASAP7-style with
//!   FADD/HADD multi-output cells);
//! * [`map`] — NPN cut matching + phase-aware minimum-area cover;
//! * [`MappedNetlist::to_aig`] — re-encode the mapped netlist as an AIG
//!   (the post-mapping reasoning subject, like `map; strash` in ABC).
//!
//! ```
//! use gamora_techmap::{map, Library, MapParams};
//! let m = gamora_circuits::csa_multiplier(4);
//! let mapped = map(&m.aig, &Library::simple(), &MapParams::default());
//! let remapped_aig = mapped.to_aig();
//! assert!(gamora_aig::sim::random_equivalence_check(&m.aig, &remapped_aig, 4, 7).is_ok());
//! ```

#![warn(missing_docs)]

pub mod expr;
mod library;
mod mapper;

pub use library::{Cell, Library, Output, ParseGenlibError};
pub use mapper::{map, Instance, MapParams, MappedNetlist, NET_CONST0, NET_CONST1};
