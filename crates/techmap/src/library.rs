//! Standard-cell libraries: genlib parsing and the two built-in libraries
//! the paper evaluates against (a *simple* mcnc-style library with ≤3-input
//! gates, and a *complex* ASAP7-style library with wide gates and
//! multi-output full/half-adder cells).

use crate::expr::{parse_expr, Expr, ParseExprError};
use std::fmt;

/// One output of a cell: a named function over the cell's pins.
#[derive(Clone, Debug)]
pub struct Output {
    /// Output pin name.
    pub name: String,
    /// Function over the cell's input pins.
    pub expr: Expr,
}

/// A standard cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Cell name (e.g. `nand2`).
    pub name: String,
    /// Area cost used by the mapper.
    pub area: f64,
    /// Input pin names in index order.
    pub pins: Vec<String>,
    /// Outputs (exactly one for genlib cells; two for adder cells).
    pub outputs: Vec<Output>,
}

impl Cell {
    /// Number of input pins.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Whether the cell has more than one output (adder cells).
    pub fn is_multi_output(&self) -> bool {
        self.outputs.len() > 1
    }

    /// Truth table of output `o` over the input pins.
    pub fn truth_table(&self, o: usize) -> u64 {
        self.outputs[o].expr.truth_table(self.num_pins())
    }
}

/// Error from [`Library::from_genlib`].
#[derive(Clone, Debug)]
pub struct ParseGenlibError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseGenlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "genlib parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseGenlibError {}

/// A collection of cells plus the special indices the mapper needs.
#[derive(Clone, Debug)]
pub struct Library {
    /// Library name.
    pub name: String,
    /// The cells.
    pub cells: Vec<Cell>,
}

impl Library {
    /// Parses SIS genlib text (only `GATE` lines are interpreted; `PIN`
    /// lines and comments starting with `#` are skipped).
    ///
    /// # Errors
    ///
    /// Returns [`ParseGenlibError`] with the offending line.
    pub fn from_genlib(name: impl Into<String>, text: &str) -> Result<Library, ParseGenlibError> {
        let mut cells = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("PIN") {
                continue;
            }
            let Some(rest) = line.strip_prefix("GATE") else {
                continue;
            };
            let err = |message: String| ParseGenlibError {
                line: lineno + 1,
                message,
            };
            let mut parts = rest.split_whitespace();
            let cell_name = parts
                .next()
                .ok_or_else(|| err("missing gate name".into()))?;
            let area: f64 = parts
                .next()
                .ok_or_else(|| err("missing area".into()))?
                .parse()
                .map_err(|e| err(format!("bad area: {e}")))?;
            let formula = parts.collect::<Vec<_>>().join(" ");
            if formula.is_empty() {
                return Err(err("missing formula".into()));
            }
            let formula = formula.as_str();
            let formula = formula.split(';').next().unwrap_or(formula).trim();
            let (out_name, body) = formula
                .split_once('=')
                .ok_or_else(|| err("formula must be OUT=expr".into()))?;
            let mut pins = Vec::new();
            let expr =
                parse_expr(body, &mut pins).map_err(|e: ParseExprError| err(e.to_string()))?;
            cells.push(Cell {
                name: cell_name.to_string(),
                area,
                pins,
                outputs: vec![Output {
                    name: out_name.trim().to_string(),
                    expr,
                }],
            });
        }
        if cells.is_empty() {
            return Err(ParseGenlibError {
                line: 0,
                message: "no GATE lines found".into(),
            });
        }
        Ok(Library {
            name: name.into(),
            cells,
        })
    }

    /// The mcnc-style *simple* library: inverter plus ≤3-input gates, the
    /// "reduced standard-cell library from SIS distribution" of §IV-A.
    pub fn simple() -> Library {
        const TEXT: &str = r#"
# mcnc-style reduced library (gate input size <= 3)
GATE inv1   1  O=!a;
GATE nand2  2  O=!(a*b);
GATE nor2   2  O=!(a+b);
GATE and2   3  O=a*b;
GATE or2    3  O=a+b;
GATE xor2   5  O=a^b;
GATE xnor2  5  O=!(a^b);
GATE nand3  3  O=!(a*b*c);
GATE nor3   3  O=!(a+b+c);
GATE and3   4  O=a*b*c;
GATE or3    4  O=a+b+c;
GATE aoi21  3  O=!(a*b+c);
GATE oai21  3  O=!((a+b)*c);
"#;
        Library::from_genlib("simple-mcnc", TEXT).expect("built-in library parses")
    }

    /// The ASAP7-style *complex* library: wide gates, and-or/or-and
    /// composites, MAJ/XOR3 and — crucially for the paper's Figure 5 —
    /// multi-output full- and half-adder cells that absorb whole adder
    /// bitslices.
    pub fn complex7nm() -> Library {
        const TEXT: &str = r#"
# ASAP7-style library (subset): wide gates + composite cells
GATE INVx1    1   O=!a;
GATE NAND2x1  2   O=!(a*b);
GATE NAND3x1  3   O=!(a*b*c);
GATE NAND4x1  4   O=!(a*b*c*d);
GATE NOR2x1   2   O=!(a+b);
GATE NOR3x1   3   O=!(a+b+c);
GATE NOR4x1   4   O=!(a+b+c+d);
GATE AND2x1   3   O=a*b;
GATE AND3x1   4   O=a*b*c;
GATE AND4x1   5   O=a*b*c*d;
GATE OR2x1    3   O=a+b;
GATE OR3x1    4   O=a+b+c;
GATE OR4x1    5   O=a+b+c+d;
GATE XOR2x1   5   O=a^b;
GATE XNOR2x1  5   O=!(a^b);
GATE XOR3x1   8   O=a^b^c;
GATE XNOR3x1  8   O=!(a^b^c);
GATE MAJx2    7   O=a*b+a*c+b*c;
GATE MAJIx2   7   O=!(a*b+a*c+b*c);
GATE AO21x1   4   O=a*b+c;
GATE AO22x1   5   O=a*b+c*d;
GATE OA21x1   4   O=(a+b)*c;
GATE OA22x1   5   O=(a+b)*(c+d);
GATE AOI21x1  3   O=!(a*b+c);
GATE AOI22x1  4   O=!(a*b+c*d);
GATE AOI211x1 4   O=!(a*b+c+d);
GATE OAI21x1  3   O=!((a+b)*c);
GATE OAI22x1  4   O=!((a+b)*(c+d));
GATE OAI211x1 4   O=!((a+b)*c*d);
GATE MUX2x1   6   O=s*a+!s*b;
GATE MUXI2x1  6   O=!(s*a+!s*b);
"#;
        let mut lib = Library::from_genlib("complex-asap7", TEXT).expect("built-in library parses");
        // Multi-output adder cells (genlib cannot express these; ASAP7's
        // FADDx1 / HADDx1 equivalents are added programmatically).
        let mut fa_pins = Vec::new();
        let fa_sum = parse_expr("a^b^c", &mut fa_pins).unwrap();
        let fa_carry = parse_expr("a*b+a*c+b*c", &mut fa_pins).unwrap();
        lib.cells.push(Cell {
            name: "FADDx1".into(),
            area: 11.0,
            pins: fa_pins,
            outputs: vec![
                Output {
                    name: "S".into(),
                    expr: fa_sum,
                },
                Output {
                    name: "CO".into(),
                    expr: fa_carry,
                },
            ],
        });
        let mut ha_pins = Vec::new();
        let ha_sum = parse_expr("a^b", &mut ha_pins).unwrap();
        let ha_carry = parse_expr("a*b", &mut ha_pins).unwrap();
        lib.cells.push(Cell {
            name: "HADDx1".into(),
            area: 7.0,
            pins: ha_pins,
            outputs: vec![
                Output {
                    name: "S".into(),
                    expr: ha_sum,
                },
                Output {
                    name: "CO".into(),
                    expr: ha_carry,
                },
            ],
        });
        lib
    }

    /// Index of the cheapest inverter cell.
    ///
    /// # Panics
    ///
    /// Panics if the library has no inverter (mapping requires one).
    pub fn inverter(&self) -> usize {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_multi_output() && c.num_pins() == 1 && c.truth_table(0) == 0x1)
            .min_by(|a, b| a.1.area.total_cmp(&b.1.area))
            .map(|(i, _)| i)
            .expect("library must contain an inverter")
    }

    /// Indices of multi-output adder cells `(full, half)` if present.
    pub fn adder_cells(&self) -> (Option<usize>, Option<usize>) {
        let mut full = None;
        let mut half = None;
        for (i, c) in self.cells.iter().enumerate() {
            if c.is_multi_output() && c.num_pins() == 3 {
                full = Some(i);
            }
            if c.is_multi_output() && c.num_pins() == 2 {
                half = Some(i);
            }
        }
        (full, half)
    }

    /// Maximum input-pin count over single-output cells.
    pub fn max_pins(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| !c.is_multi_output())
            .map(Cell::num_pins)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_aig::tt;

    #[test]
    fn builtin_libraries_parse() {
        let simple = Library::simple();
        assert_eq!(simple.cells.len(), 13);
        assert!(simple.max_pins() <= 3, "simple library is <=3-input");
        let complex = Library::complex7nm();
        assert!(complex.cells.len() > 30);
        assert_eq!(complex.max_pins(), 4);
        let (fa, ha) = complex.adder_cells();
        assert!(fa.is_some() && ha.is_some());
        assert_eq!(Library::simple().adder_cells(), (None, None));
    }

    #[test]
    fn cell_truth_tables() {
        let lib = Library::simple();
        let nand2 = lib.cells.iter().find(|c| c.name == "nand2").unwrap();
        assert_eq!(nand2.truth_table(0), !tt::AND2 & tt::mask(2));
        let aoi = lib.cells.iter().find(|c| c.name == "aoi21").unwrap();
        assert_eq!(
            aoi.truth_table(0),
            !(tt::var(0) & tt::var(1) | tt::var(2)) & tt::mask(3)
        );
    }

    #[test]
    fn adder_cell_functions() {
        let lib = Library::complex7nm();
        let (fa, ha) = lib.adder_cells();
        let fa = &lib.cells[fa.unwrap()];
        assert_eq!(fa.truth_table(0), tt::XOR3);
        assert_eq!(fa.truth_table(1), tt::MAJ3);
        let ha = &lib.cells[ha.unwrap()];
        assert_eq!(ha.truth_table(0), tt::XOR2);
        assert_eq!(ha.truth_table(1), tt::AND2);
    }

    #[test]
    fn inverter_lookup() {
        assert_eq!(
            Library::simple().cells[Library::simple().inverter()].name,
            "inv1"
        );
        let lib = Library::complex7nm();
        assert_eq!(lib.cells[lib.inverter()].name, "INVx1");
    }

    #[test]
    fn genlib_errors_carry_line_numbers() {
        let bad = "GATE foo xyz O=a;";
        let e = Library::from_genlib("bad", bad).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("area"));
        assert!(Library::from_genlib("empty", "# nothing\n").is_err());
        let bad2 = "GATE g 1 Oa*b;";
        assert!(Library::from_genlib("bad2", bad2).is_err());
    }

    #[test]
    fn pin_lines_are_skipped() {
        let text = "GATE inv 1 O=!a;\nPIN * INV 1 999 1 0.2 1 0.2\n";
        let lib = Library::from_genlib("t", text).unwrap();
        assert_eq!(lib.cells.len(), 1);
        assert_eq!(lib.cells[0].pins, vec!["a"]);
    }
}
