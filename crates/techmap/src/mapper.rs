//! Cut-based standard-cell technology mapping.
//!
//! Classic area-oriented mapping: enumerate K-feasible cuts, Boolean-match
//! each cut function against the library by NPN canonicalisation (input
//! negations are realised with inverters, whose cost the dynamic program
//! accounts for), and extract a minimum-area cover with two phases
//! (positive/negated) per node. Multi-output full/half-adder cells are
//! matched through exact adder extraction, which is how a real mapper's
//! multi-output matching collapses whole bitslices — the effect that makes
//! post-mapping reasoning hard in the paper's Figure 5.

use crate::library::Library;
use gamora_aig::cut::{cone_function, enumerate_cuts, CutParams};
use gamora_aig::hasher::FxHashMap;
use gamora_aig::tt;
use gamora_aig::{Aig, NodeId, NodeKind};
use gamora_exact::{analyze, ExtractedKind};

/// Net id of constant false in a [`MappedNetlist`].
pub const NET_CONST0: u32 = u32::MAX - 1;
/// Net id of constant true in a [`MappedNetlist`].
pub const NET_CONST1: u32 = u32::MAX;

/// Mapping parameters.
#[derive(Copy, Clone, Debug)]
pub struct MapParams {
    /// Cut size for matching (at most 4; NPN canonicalisation bound).
    pub max_cut: usize,
    /// Cuts kept per node.
    pub cuts_per_node: usize,
    /// Match multi-output adder cells when the library has them.
    pub use_adder_cells: bool,
}

impl Default for MapParams {
    fn default() -> Self {
        MapParams {
            max_cut: 4,
            cuts_per_node: 8,
            use_adder_cells: true,
        }
    }
}

/// One placed cell instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Index into the library's cell list.
    pub cell: usize,
    /// Input nets, one per cell pin.
    pub inputs: Vec<u32>,
    /// Output nets, one per cell output.
    pub outputs: Vec<u32>,
}

/// The result of mapping: a cell-level netlist.
#[derive(Clone, Debug)]
pub struct MappedNetlist {
    /// The library the instances index into.
    pub library: Library,
    /// Instances in topological order.
    pub instances: Vec<Instance>,
    /// Net carrying each primary input (in AIG input order).
    pub input_nets: Vec<u32>,
    /// Net carrying each primary output (in AIG output order).
    pub output_nets: Vec<u32>,
    /// Total number of ordinary nets.
    pub num_nets: u32,
}

impl MappedNetlist {
    /// Total cell area.
    pub fn area(&self) -> f64 {
        self.instances
            .iter()
            .map(|i| self.library.cells[i.cell].area)
            .sum()
    }

    /// Cell-name histogram, sorted by descending count.
    pub fn cell_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for i in &self.instances {
            *counts.entry(&self.library.cells[i.cell].name).or_default() += 1;
        }
        let mut out: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Re-encodes the mapped netlist as an AIG (each cell's function is
    /// rebuilt gate by gate) — the subject graph for post-mapping
    /// reasoning, mirroring `strash` after `map` in ABC.
    pub fn to_aig(&self) -> Aig {
        use crate::expr::Expr;
        let mut aig = Aig::with_capacity(self.instances.len() * 4 + self.input_nets.len());
        let mut nets: FxHashMap<u32, gamora_aig::Lit> = FxHashMap::default();
        nets.insert(NET_CONST0, gamora_aig::Lit::FALSE);
        nets.insert(NET_CONST1, gamora_aig::Lit::TRUE);
        for &net in &self.input_nets {
            let lit = aig.add_input().lit();
            nets.insert(net, lit);
        }
        fn build(aig: &mut Aig, e: &Expr, pins: &[gamora_aig::Lit]) -> gamora_aig::Lit {
            match e {
                Expr::Const(false) => gamora_aig::Lit::FALSE,
                Expr::Const(true) => gamora_aig::Lit::TRUE,
                Expr::Pin(i) => pins[*i],
                Expr::Not(x) => !build(aig, x, pins),
                Expr::And(a, b) => {
                    let (la, lb) = (build(aig, a, pins), build(aig, b, pins));
                    aig.and(la, lb)
                }
                Expr::Or(a, b) => {
                    let (la, lb) = (build(aig, a, pins), build(aig, b, pins));
                    aig.or(la, lb)
                }
                Expr::Xor(a, b) => {
                    let (la, lb) = (build(aig, a, pins), build(aig, b, pins));
                    aig.xor(la, lb)
                }
            }
        }
        for inst in &self.instances {
            let pins: Vec<gamora_aig::Lit> = inst
                .inputs
                .iter()
                .map(|n| *nets.get(n).expect("topological instance order"))
                .collect();
            let cell = &self.library.cells[inst.cell];
            for (o, out) in cell.outputs.iter().enumerate() {
                let lit = build(&mut aig, &out.expr, &pins);
                nets.insert(inst.outputs[o], lit);
            }
        }
        for &net in &self.output_nets {
            let lit = *nets.get(&net).expect("output net driven");
            aig.add_output(lit);
        }
        aig
    }
}

#[derive(Clone, Debug, Default)]
enum Choice {
    #[default]
    None,
    /// Primary input (positive phase).
    Input,
    /// Constant value.
    Const(bool),
    /// Inverter from the opposite phase.
    Inv,
    /// Alias of a leaf (vacuous cut): node phase = leaf phase ^ neg.
    Wire { leaf: u32, neg: bool },
    /// A matched single-output cell.
    Cell {
        cell: u32,
        /// Leaf node feeding each cell pin.
        pin_leaves: Vec<u32>,
        /// Phase required of each pin's leaf (true = negated).
        pin_neg: Vec<bool>,
    },
    /// One output of a matched multi-output adder cell.
    AdderCell { adder: u32 },
}

const INF: f64 = f64::INFINITY;

struct AdderMatch {
    cell: usize,
    leaves: Vec<u32>,
    /// Phase required of each leaf.
    neg: Vec<bool>,
    sum: NodeId,
    carry: NodeId,
    /// Phase the cell's S / CO nets provide for sum / carry nodes.
    sum_neg: bool,
    carry_neg: bool,
}

/// Maps an AIG onto a library, minimising area.
///
/// # Panics
///
/// Panics if `params.max_cut > 4` or the library lacks an inverter.
pub fn map(aig: &Aig, library: &Library, params: &MapParams) -> MappedNetlist {
    assert!(
        params.max_cut >= 2 && params.max_cut <= 4,
        "NPN matching supports cuts of 2..=4"
    );
    let inv_cell = library.inverter();
    let inv_area = library.cells[inv_cell].area;

    // NPN index over single-output cells.
    let mut index: FxHashMap<(u64, usize), Vec<usize>> = FxHashMap::default();
    for (ci, cell) in library.cells.iter().enumerate() {
        if cell.is_multi_output() || cell.num_pins() < 2 || cell.num_pins() > params.max_cut {
            continue;
        }
        let k = cell.num_pins();
        let canon = tt::npn_canon(cell.truth_table(0), k);
        index.entry((canon, k)).or_default().push(ci);
    }

    // Multi-output adder matching via exact extraction.
    let mut adder_matches: Vec<AdderMatch> = Vec::new();
    let mut adder_at: FxHashMap<(u32, bool), u32> = FxHashMap::default(); // (node, phase) -> adder idx
    if params.use_adder_cells {
        let (fa_cell, ha_cell) = library.adder_cells();
        if fa_cell.is_some() || ha_cell.is_some() {
            let analysis = analyze(aig);
            for a in &analysis.adders {
                let (cell, base_sum, base_carry) = match a.kind {
                    ExtractedKind::Full => match fa_cell {
                        Some(c) => (c, tt::XOR3, tt::MAJ3),
                        None => continue,
                    },
                    ExtractedKind::Half => match ha_cell {
                        Some(c) => (c, tt::XOR2, tt::AND2),
                        None => continue,
                    },
                };
                let leaves: Vec<NodeId> = a.leaf_slice().iter().map(|&l| NodeId::new(l)).collect();
                let k = leaves.len();
                let Some(sum_tt) = cone_function(aig, a.sum.lit(), &leaves) else {
                    continue;
                };
                let Some(carry_tt) = cone_function(aig, a.carry.lit(), &leaves) else {
                    continue;
                };
                let id: Vec<usize> = (0..k).collect();
                let mut found = None;
                'mask: for m in 0..(1u32 << k) {
                    for o in [false, true] {
                        if tt::transform(base_carry, k, &id, m, o) == carry_tt {
                            found = Some((m, o));
                            break 'mask;
                        }
                    }
                }
                let Some((mask, carry_neg)) = found else {
                    continue;
                };
                let sum_neg = tt::transform(base_sum, k, &id, mask, false) != sum_tt;
                // Confirm the sum is consistent under the same mask.
                if tt::transform(base_sum, k, &id, mask, sum_neg) != sum_tt {
                    continue;
                }
                let idx = adder_matches.len() as u32;
                adder_matches.push(AdderMatch {
                    cell,
                    leaves: a.leaf_slice().to_vec(),
                    neg: (0..k).map(|i| mask >> i & 1 == 1).collect(),
                    sum: a.sum,
                    carry: a.carry,
                    sum_neg,
                    carry_neg,
                });
                adder_at.insert((a.sum.as_u32(), sum_neg), idx);
                adder_at.insert((a.carry.as_u32(), carry_neg), idx);
            }
        }
    }

    // Phase-aware minimum-area DP.
    let cuts = enumerate_cuts(
        aig,
        &CutParams {
            max_leaves: params.max_cut,
            max_cuts: params.cuts_per_node,
        },
    );
    let n = aig.num_nodes();
    let mut cost = vec![[INF, INF]; n];
    let mut choice: Vec<[Choice; 2]> = (0..n).map(|_| [Choice::None, Choice::None]).collect();
    for node in aig.node_ids() {
        let v = node.index();
        match aig.kind(node) {
            NodeKind::Const0 => {
                cost[v] = [0.0, 0.0];
                choice[v] = [Choice::Const(false), Choice::Const(true)];
            }
            NodeKind::Input => {
                cost[v] = [0.0, inv_area];
                choice[v] = [Choice::Input, Choice::Inv];
            }
            NodeKind::And => {
                for cut in cuts.of(node) {
                    if cut.is_trivial_of(node) {
                        continue;
                    }
                    let (stt, k, kept) = tt::shrink(cut.tt, cut.len());
                    let leaves: Vec<u32> = kept.iter().map(|&i| cut.leaves()[i]).collect();
                    match k {
                        0 => {
                            let val = stt & 1 == 1;
                            relax(&mut cost[v], &mut choice[v], 0, 0.0, Choice::Const(val));
                            relax(&mut cost[v], &mut choice[v], 1, 0.0, Choice::Const(!val));
                        }
                        1 => {
                            let neg = stt == 0x1;
                            let leaf = leaves[0];
                            for ph in 0..2 {
                                let lp = (ph == 1) ^ neg; // leaf phase needed
                                let c = cost[leaf as usize][lp as usize];
                                relax(
                                    &mut cost[v],
                                    &mut choice[v],
                                    ph,
                                    c,
                                    Choice::Wire { leaf, neg },
                                );
                            }
                        }
                        _ => {
                            let canon = tt::npn_canon(stt, k);
                            let Some(cands) = index.get(&(canon, k)) else {
                                continue;
                            };
                            for &ci in cands {
                                let cell_tt = library.cells[ci].truth_table(0);
                                let Some(t) = tt::npn_match(stt, cell_tt, k) else {
                                    continue;
                                };
                                // Cell pin i connects leaf perm[i] in phase neg_i;
                                // out_neg selects which node phase it provides.
                                let mut pin_leaves = Vec::with_capacity(k);
                                let mut pin_neg = Vec::with_capacity(k);
                                let mut total = library.cells[ci].area;
                                for i in 0..k {
                                    let leaf = leaves[t.perm[i]];
                                    let np = t.neg >> i & 1 == 1;
                                    pin_leaves.push(leaf);
                                    pin_neg.push(np);
                                    total += cost[leaf as usize][np as usize];
                                }
                                let ph = t.out_neg as usize;
                                relax(
                                    &mut cost[v],
                                    &mut choice[v],
                                    ph,
                                    total,
                                    Choice::Cell {
                                        cell: ci as u32,
                                        pin_leaves,
                                        pin_neg,
                                    },
                                );
                            }
                        }
                    }
                }
                // Multi-output adder candidates.
                for ph in 0..2 {
                    if let Some(&ai) = adder_at.get(&(node.as_u32(), ph == 1)) {
                        let am = &adder_matches[ai as usize];
                        let mut total = library.cells[am.cell].area * 0.5;
                        for (i, &leaf) in am.leaves.iter().enumerate() {
                            total += cost[leaf as usize][am.neg[i] as usize];
                        }
                        relax(
                            &mut cost[v],
                            &mut choice[v],
                            ph,
                            total,
                            Choice::AdderCell { adder: ai },
                        );
                    }
                }
                // Phase closure through an inverter.
                if cost[v][0] + inv_area < cost[v][1] {
                    cost[v][1] = cost[v][0] + inv_area;
                    choice[v][1] = Choice::Inv;
                }
                if cost[v][1] + inv_area < cost[v][0] {
                    cost[v][0] = cost[v][1] + inv_area;
                    choice[v][0] = Choice::Inv;
                }
            }
        }
    }

    // Cover extraction, demand-driven from the outputs.
    let mut builder = CoverBuilder {
        inv_cell,
        choice: &choice,
        adder_matches: &adder_matches,
        instances: Vec::new(),
        nets: FxHashMap::default(),
        adder_nets: FxHashMap::default(),
        input_nets: vec![0; aig.num_inputs()],
        next_net: 0,
    };
    for (i, _) in aig.inputs().iter().enumerate() {
        let net = builder.fresh_net();
        builder.input_nets[i] = net;
        let node = aig.inputs()[i].as_u32();
        builder.nets.insert((node, false), net);
    }
    let output_nets: Vec<u32> = aig
        .outputs()
        .iter()
        .map(|o| builder.resolve(o.var(), o.is_complement()))
        .collect();
    MappedNetlist {
        library: library.clone(),
        instances: builder.instances,
        input_nets: builder.input_nets,
        output_nets,
        num_nets: builder.next_net,
    }
}

fn relax(cost: &mut [f64; 2], choice: &mut [Choice; 2], ph: usize, c: f64, ch: Choice) {
    if c < cost[ph] {
        cost[ph] = c;
        choice[ph] = ch;
    }
}

struct CoverBuilder<'a> {
    inv_cell: usize,
    choice: &'a [[Choice; 2]],
    adder_matches: &'a [AdderMatch],
    instances: Vec<Instance>,
    nets: FxHashMap<(u32, bool), u32>,
    adder_nets: FxHashMap<u32, (u32, u32)>,
    input_nets: Vec<u32>,
    next_net: u32,
}

impl CoverBuilder<'_> {
    fn fresh_net(&mut self) -> u32 {
        let n = self.next_net;
        self.next_net += 1;
        n
    }

    /// Returns the net carrying `node`'s value in the given phase
    /// (`neg = true` means the net carries the complement).
    fn resolve(&mut self, node: NodeId, neg: bool) -> u32 {
        let key = (node.as_u32(), neg);
        if let Some(&net) = self.nets.get(&key) {
            return net;
        }
        let net = match &self.choice[node.index()][neg as usize] {
            Choice::None => panic!("unmappable node {node} phase {neg} (incomplete library?)"),
            Choice::Input => {
                unreachable!("input positive nets are pre-seeded")
            }
            Choice::Const(v) => {
                if *v {
                    NET_CONST1
                } else {
                    NET_CONST0
                }
            }
            Choice::Inv => {
                let src = self.resolve(node, !neg);
                let out = self.fresh_net();
                self.instances.push(Instance {
                    cell: self.inv_cell,
                    inputs: vec![src],
                    outputs: vec![out],
                });
                out
            }
            Choice::Wire { leaf, neg: wneg } => {
                let (leaf, wneg) = (*leaf, *wneg);
                self.resolve(NodeId::new(leaf), neg ^ wneg)
            }
            Choice::Cell {
                cell,
                pin_leaves,
                pin_neg,
            } => {
                let (cell, pin_leaves, pin_neg) =
                    (*cell as usize, pin_leaves.clone(), pin_neg.clone());
                let inputs: Vec<u32> = pin_leaves
                    .iter()
                    .zip(&pin_neg)
                    .map(|(&l, &p)| self.resolve(NodeId::new(l), p))
                    .collect();
                let out = self.fresh_net();
                self.instances.push(Instance {
                    cell,
                    inputs,
                    outputs: vec![out],
                });
                out
            }
            Choice::AdderCell { adder } => {
                let adder = *adder;
                let (s_net, c_net) = self.instantiate_adder(adder);
                let am = &self.adder_matches[adder as usize];
                if node == am.sum {
                    s_net
                } else {
                    c_net
                }
            }
        };
        self.nets.insert(key, net);
        net
    }

    fn instantiate_adder(&mut self, adder: u32) -> (u32, u32) {
        if let Some(&nets) = self.adder_nets.get(&adder) {
            return nets;
        }
        let am = &self.adder_matches[adder as usize];
        let (cell, leaves, negs) = (am.cell, am.leaves.clone(), am.neg.clone());
        let (sum, carry, sum_neg, carry_neg) = (am.sum, am.carry, am.sum_neg, am.carry_neg);
        let inputs: Vec<u32> = leaves
            .iter()
            .zip(&negs)
            .map(|(&l, &p)| self.resolve(NodeId::new(l), p))
            .collect();
        let s_net = self.fresh_net();
        let c_net = self.fresh_net();
        self.instances.push(Instance {
            cell,
            inputs,
            outputs: vec![s_net, c_net],
        });
        self.adder_nets.insert(adder, (s_net, c_net));
        // The cell outputs provide specific phases of the root nodes.
        self.nets.insert((sum.as_u32(), sum_neg), s_net);
        self.nets.insert((carry.as_u32(), carry_neg), c_net);
        (s_net, c_net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamora_aig::sim::random_equivalence_check;
    use gamora_circuits::{booth_multiplier, csa_multiplier, kogge_stone_adder};

    fn roundtrip_equivalent(aig: &Aig, lib: &Library, params: &MapParams) -> MappedNetlist {
        let mapped = map(aig, lib, params);
        let back = mapped.to_aig();
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        assert!(
            random_equivalence_check(aig, &back, 8, 0xFEED).is_ok(),
            "mapping changed the function"
        );
        mapped
    }

    #[test]
    fn simple_library_preserves_function() {
        for bits in [3usize, 4, 6] {
            let m = csa_multiplier(bits);
            roundtrip_equivalent(&m.aig, &Library::simple(), &MapParams::default());
        }
    }

    #[test]
    fn complex_library_preserves_function() {
        for bits in [3usize, 4, 6] {
            let m = csa_multiplier(bits);
            roundtrip_equivalent(&m.aig, &Library::complex7nm(), &MapParams::default());
        }
    }

    #[test]
    fn booth_maps_equivalently() {
        let m = booth_multiplier(4);
        roundtrip_equivalent(&m.aig, &Library::simple(), &MapParams::default());
        roundtrip_equivalent(&m.aig, &Library::complex7nm(), &MapParams::default());
    }

    #[test]
    fn adder_cells_are_used_on_multipliers() {
        let m = csa_multiplier(6);
        let mapped = roundtrip_equivalent(&m.aig, &Library::complex7nm(), &MapParams::default());
        let hist = mapped.cell_histogram();
        let fadds = hist
            .iter()
            .find(|(n, _)| n == "FADDx1")
            .map(|&(_, c)| c)
            .unwrap_or(0);
        assert!(fadds > 0, "expected FADD cells, got {hist:?}");
    }

    #[test]
    fn disabling_adder_cells_increases_area() {
        let m = csa_multiplier(6);
        let lib = Library::complex7nm();
        let with = map(&m.aig, &lib, &MapParams::default());
        let without = map(
            &m.aig,
            &lib,
            &MapParams {
                use_adder_cells: false,
                ..MapParams::default()
            },
        );
        assert!(
            with.area() < without.area(),
            "FADD absorption should save area: {} vs {}",
            with.area(),
            without.area()
        );
        assert!(random_equivalence_check(&m.aig, &without.to_aig(), 8, 3).is_ok());
    }

    #[test]
    fn mapping_restructures_the_netlist() {
        // The post-mapping AIG must differ structurally from the original —
        // that is the phenomenon Figure 5 studies.
        let m = csa_multiplier(5);
        let mapped = map(&m.aig, &Library::complex7nm(), &MapParams::default());
        let back = mapped.to_aig();
        assert_ne!(back.num_ands(), m.aig.num_ands());
    }

    #[test]
    fn prefix_adder_maps() {
        let ks = kogge_stone_adder(12);
        roundtrip_equivalent(&ks.aig, &Library::simple(), &MapParams::default());
    }

    #[test]
    fn area_accounting() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let g = aig.and(a, b);
        aig.add_output(g);
        let lib = Library::simple();
        let mapped = map(&aig, &lib, &MapParams::default());
        // One and2 (area 3) or nand2+inv (2+1); either way area == 3.
        assert!((mapped.area() - 3.0).abs() < 1e-9, "area {}", mapped.area());
        assert_eq!(mapped.output_nets.len(), 1);
    }
}
