//! Quickstart: the paper's Figure 3 walk-through on a 3-bit CSA multiplier.
//!
//! 1. Generate the multiplier AIG.
//! 2. Run exact reasoning (ground truth, like ABC's `&atree`).
//! 3. Train Gamora on the netlist and predict node roles.
//! 4. Extract the adder tree from the predictions and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use gamora::{compare_extraction, GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig};
use gamora_circuits::csa_multiplier;
use gamora_exact::{analyze, build_tree, RootLeafClass};

fn main() {
    // --- 1. the workload -------------------------------------------------
    let mult = csa_multiplier(3);
    println!("3-bit CSA multiplier: {}", mult.aig.stats());

    // --- 2. exact reasoning ----------------------------------------------
    let analysis = analyze(&mult.aig);
    let tree = build_tree(&analysis.adders);
    println!("exact reasoning found: {tree}");
    let (roots, leaves, xors, majs) = analysis.labels.summary();
    println!("labels: {roots} roots, {leaves} leaves, {xors} XOR nodes, {majs} MAJ nodes");
    for a in &analysis.adders {
        println!(
            "  {:?} adder: sum = n{}, carry = n{}, inputs = {:?}",
            a.kind,
            a.sum.index(),
            a.carry.index(),
            a.leaf_slice()
        );
    }

    // --- 3. learn and predict --------------------------------------------
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Shallow,
        ..ReasonerConfig::default()
    });
    println!(
        "\ntraining a {:?} model ({} parameters) ...",
        reasoner.config().depth,
        reasoner.num_params()
    );
    let report = reasoner.fit(
        &[&mult.aig],
        &TrainConfig {
            epochs: 250,
            ..TrainConfig::default()
        },
    );
    println!(
        "final training loss {:.4}, train accuracy {:?}",
        report.epoch_losses.last().unwrap(),
        report
            .train_accuracy
            .iter()
            .map(|a| format!("{:.1}%", a * 100.0))
            .collect::<Vec<_>>()
    );
    let eval = reasoner.evaluate(&mult.aig);
    println!("node-level evaluation: {eval}");

    // --- 4. adder tree from predictions -----------------------------------
    let preds = reasoner.predict(&mult.aig);
    let (predicted, cmp) = compare_extraction(&mult.aig, &preds);
    println!("\nprediction-driven extraction: {cmp}");
    let ptree = build_tree(&predicted);
    println!("predicted adder tree: {ptree}");

    // Annotated node dump (the paper's Figure 3(c)).
    println!("\nper-node annotation (AND nodes):");
    for n in mult.aig.and_ids() {
        let i = n.index();
        let mut tags = Vec::new();
        if preds.is_xor[i] {
            tags.push("XOR");
        }
        if preds.is_maj[i] {
            tags.push("MAJ");
        }
        match RootLeafClass::from_index(preds.root_leaf[i] as usize) {
            RootLeafClass::Root => tags.push("root"),
            RootLeafClass::Leaf => tags.push("leaf"),
            RootLeafClass::RootAndLeaf => tags.push("root+leaf"),
            RootLeafClass::Other => {}
        }
        if !tags.is_empty() {
            println!("  n{i}: {}", tags.join(" | "));
        }
    }
}
