//! Reverse engineering: find the arithmetic hidden inside a flattened
//! datapath.
//!
//! Gamora is trained only on small stand-alone CSA multipliers, then asked
//! to annotate a flattened multiply-accumulate unit and a 4-lane dot
//! product — netlists it has never seen, with adder trees interleaved with
//! glue logic. The extracted trees are compared against exact reasoning.
//!
//! Run with: `cargo run --release --example reverse_engineer`

use gamora::{compare_extraction, lsb_correction, GamoraReasoner, ReasonerConfig, TrainConfig};
use gamora_circuits::{csa_multiplier, dot_product, multiply_accumulate};
use gamora_exact::build_tree;

fn main() {
    // Train on small, clean multipliers only.
    let train: Vec<_> = [3usize, 4, 5, 6]
        .iter()
        .map(|&b| csa_multiplier(b))
        .collect();
    let train_refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig::default());
    println!("training on {} small CSA multipliers ...", train.len());
    reasoner.fit(
        &train_refs,
        &TrainConfig {
            epochs: 300,
            ..TrainConfig::default()
        },
    );

    // Reverse engineer unseen, composite datapaths.
    let mac = multiply_accumulate(8);
    let dot = dot_product(6, 4);
    for (name, circuit) in [
        ("8-bit MAC (a*b + c)", &mac),
        ("4-lane 6-bit dot product", &dot),
    ] {
        println!("\n=== {name}: {} ===", circuit.aig.stats());
        let eval = reasoner.evaluate(&circuit.aig);
        println!("node annotation:     {eval}");
        let preds = reasoner.predict(&circuit.aig);
        let (mut adders, cmp) = compare_extraction(&circuit.aig, &preds);
        println!("extraction vs exact: {cmp}");
        let repaired = lsb_correction(&circuit.aig, &mut adders);
        println!(
            "LSB post-processing repaired {repaired} adder(s); final tree: {}",
            build_tree(&adders)
        );
        let exact_tree = build_tree(&gamora_exact::analyze(&circuit.aig).adders);
        println!("exact tree:          {exact_tree}");
    }
}
