//! Scalability sweep (a miniature of the paper's Figure 7): netlist size,
//! exact-reasoning runtime and GNN inference runtime as multiplier width
//! grows.
//!
//! Run with: `cargo run --release --example scalability [max_bits]`
//! (default 128; pass 512 or more on a fast machine).

use gamora::{GamoraReasoner, ReasonerConfig, TrainConfig};
use gamora_circuits::csa_multiplier;
use std::time::Instant;

fn main() {
    let max_bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);

    let mut reasoner = GamoraReasoner::new(ReasonerConfig::default());
    let train: Vec<_> = [4usize, 6, 8].iter().map(|&b| csa_multiplier(b)).collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    eprintln!("training once on 4-8 bit multipliers ...");
    reasoner.fit(
        &refs,
        &TrainConfig {
            epochs: 250,
            ..TrainConfig::default()
        },
    );

    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "bits", "|V|", "|E|", "exact (ms)", "gamora (ms)", "acc (%)"
    );
    let mut bits = 16usize;
    while bits <= max_bits {
        let t = Instant::now();
        let m = csa_multiplier(bits);
        let gen_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let analysis = gamora_exact::analyze(&m.aig);
        let exact_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let preds = reasoner.predict(&m.aig);
        let gamora_ms = t.elapsed().as_secs_f64() * 1e3;

        let eval = gamora::score_predictions(&preds, &analysis.labels);
        println!(
            "{:>6} {:>10} {:>10} {:>12.1} {:>12.1} {:>8.2}   (gen {gen_ms:.0} ms, {} adders)",
            bits,
            m.aig.num_nodes(),
            2 * m.aig.num_ands(),
            exact_ms,
            gamora_ms,
            eval.mean() * 100.0,
            analysis.adders.len(),
        );
        bits *= 2;
    }
}
