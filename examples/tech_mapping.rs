//! Technology mapping and its impact on reasoning (the paper's Figure 5
//! phenomenon, in miniature).
//!
//! An 8-bit CSA multiplier is mapped onto (a) a simple mcnc-style library
//! and (b) a complex ASAP7-style library with multi-output adder cells.
//! A model trained on *unmapped* multipliers is evaluated on each
//! post-mapping netlist, showing how mapping — especially the complex
//! library — erodes accuracy; retraining on mapped netlists recovers it.
//!
//! Run with: `cargo run --release --example tech_mapping`

use gamora::{GamoraReasoner, ReasonerConfig, TrainConfig};
use gamora_aig::Aig;
use gamora_circuits::csa_multiplier;
use gamora_techmap::{map, Library, MapParams};

fn mapped_aig(bits: usize, lib: &Library) -> Aig {
    let m = csa_multiplier(bits);
    let mapped = map(&m.aig, lib, &MapParams::default());
    mapped.to_aig()
}

fn main() {
    let simple = Library::simple();
    let complex = Library::complex7nm();

    // Show what mapping does to the netlist.
    let m8 = csa_multiplier(8);
    println!("original 8-bit CSA multiplier: {}", m8.aig.stats());
    for (name, lib) in [
        ("simple (mcnc-style)", &simple),
        ("complex (ASAP7-style)", &complex),
    ] {
        let mapped = map(&m8.aig, lib, &MapParams::default());
        println!(
            "\nmapped with {name}: {} instances, area {:.0}",
            mapped.instances.len(),
            mapped.area()
        );
        for (cell, count) in mapped.cell_histogram().into_iter().take(6) {
            println!("    {cell:10} x{count}");
        }
        let back = mapped.to_aig();
        println!("  re-encoded as AIG: {}", back.stats());
    }

    // Train on unmapped multipliers.
    let train: Vec<_> = [4usize, 5, 6].iter().map(|&b| csa_multiplier(b)).collect();
    let train_refs: Vec<&Aig> = train.iter().map(|m| &m.aig).collect();
    let cfg = TrainConfig {
        epochs: 300,
        ..TrainConfig::default()
    };
    let mut unmapped_model = GamoraReasoner::new(ReasonerConfig::default());
    println!("\ntraining on unmapped 4-6 bit multipliers ...");
    unmapped_model.fit(&train_refs, &cfg);

    println!("\n-- generalisation of the unmapped-trained model --");
    println!(
        "unmapped 8-bit:        {}",
        unmapped_model.evaluate(&m8.aig)
    );
    let simple_mapped = mapped_aig(8, &simple);
    println!(
        "simple-mapped 8-bit:   {}",
        unmapped_model.evaluate(&simple_mapped)
    );
    let complex_mapped = mapped_aig(8, &complex);
    println!(
        "complex-mapped 8-bit:  {}",
        unmapped_model.evaluate(&complex_mapped)
    );

    // Retrain on mapped netlists.
    for (name, lib) in [("simple", &simple), ("complex", &complex)] {
        let mapped_train: Vec<Aig> = [4usize, 5, 6].iter().map(|&b| mapped_aig(b, lib)).collect();
        let refs: Vec<&Aig> = mapped_train.iter().collect();
        let mut retrained = GamoraReasoner::new(ReasonerConfig::default());
        retrained.fit(&refs, &cfg);
        let subject = mapped_aig(8, lib);
        println!(
            "retrained on {name}-mapped 4-6 bit: {}",
            retrained.evaluate(&subject)
        );
    }
}
