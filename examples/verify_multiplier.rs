//! Formal multiplier verification with symbolic computer algebra — the
//! downstream application motivating adder-tree extraction.
//!
//! Three flows verify the same multiplier against the spec `A * B`:
//!
//! 1. **naive** — node-by-node backward rewriting (the expensive exact
//!    baseline);
//! 2. **exact-assisted** — adder-aware rewriting using `&atree`-style
//!    extraction;
//! 3. **Gamora-assisted** — adder-aware rewriting using the *GNN's*
//!    extracted tree (with LSB post-processing).
//!
//! A broken multiplier (two product bits swapped) is also rejected.
//!
//! Run with: `cargo run --release --example verify_multiplier`

use gamora::{
    extract_from_predictions, lsb_correction, GamoraReasoner, ReasonerConfig, TrainConfig,
};
use gamora_circuits::csa_multiplier;
use gamora_sca::{product_spec, verify, RewriteParams};
use std::time::Instant;

fn main() {
    let bits = 8;
    let m = csa_multiplier(bits);
    let spec = product_spec(&m.a, &m.b);
    let params = RewriteParams::default();
    println!("verifying {}-bit CSA multiplier: {}", bits, m.aig.stats());

    // 1. naive symbolic evaluation
    let t = Instant::now();
    let naive = verify(&m.aig, &spec, None, &params).expect("within term budget");
    println!(
        "naive rewriting:          {naive}  [{:.1} ms]",
        t.elapsed().as_secs_f64() * 1e3
    );

    // 2. exact adder-tree assisted
    let t = Instant::now();
    let analysis = gamora_exact::analyze(&m.aig);
    let exact = verify(&m.aig, &spec, Some(&analysis.adders), &params).unwrap();
    println!(
        "exact-tree assisted:      {exact}  [{:.1} ms]",
        t.elapsed().as_secs_f64() * 1e3
    );

    // 3. Gamora-assisted
    let mut reasoner = GamoraReasoner::new(ReasonerConfig::default());
    let train: Vec<_> = [3usize, 4, 5, 6]
        .iter()
        .map(|&b| csa_multiplier(b))
        .collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    reasoner.fit(
        &refs,
        &TrainConfig {
            epochs: 300,
            ..TrainConfig::default()
        },
    );
    let t = Instant::now();
    let preds = reasoner.predict(&m.aig);
    let mut adders = extract_from_predictions(&m.aig, &preds);
    lsb_correction(&m.aig, &mut adders);
    let gnn = verify(&m.aig, &spec, Some(&adders), &params).unwrap();
    println!(
        "Gamora-tree assisted:     {gnn}  [{:.1} ms, {} adders extracted]",
        t.elapsed().as_secs_f64() * 1e3,
        adders.len()
    );

    // 4. a broken multiplier must be rejected
    let mut broken = csa_multiplier(bits);
    let (o2, o3) = (broken.aig.outputs()[2], broken.aig.outputs()[3]);
    broken.aig.set_output(2, o3);
    broken.aig.set_output(3, o2);
    let bad = verify(&broken.aig, &spec, None, &params).unwrap();
    println!("mutated multiplier:       {bad}");
    assert!(!bad.equivalent, "mutation must be caught");
}
