//! Umbrella crate for the Gamora reproduction: re-exports every workspace
//! crate so examples and integration tests can use one import root.
pub use gamora as core;
pub use gamora_aig as aig;
pub use gamora_circuits as circuits;
pub use gamora_exact as exact;
pub use gamora_gnn as gnn;
pub use gamora_sca as sca;
pub use gamora_serve as serve;
pub use gamora_techmap as techmap;
