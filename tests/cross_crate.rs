//! Integration across substrates: generators x AIGER x exact reasoning x
//! technology mapping x symbolic algebra.

use gamora_aig::{aiger, sim};
use gamora_circuits::{booth_multiplier, csa_multiplier, generate_multiplier, MultiplierKind};
use gamora_sca::{product_spec, verify, RewriteParams};
use gamora_techmap::{map, Library, MapParams};

/// A multiplier survives an AIGER round-trip and exact analysis of the
/// reloaded netlist finds the same adder tree.
#[test]
fn aiger_roundtrip_preserves_reasoning() {
    let m = csa_multiplier(6);
    let mut buf = Vec::new();
    aiger::write_binary(&m.aig, &mut buf).unwrap();
    let back = aiger::read(&buf[..]).unwrap();
    assert!(sim::random_equivalence_check(&m.aig, &back, 8, 1).is_ok());
    let a1 = gamora_exact::analyze(&m.aig);
    let a2 = gamora_exact::analyze(&back);
    assert_eq!(a1.adders.len(), a2.adders.len());
    // Structure preserved exactly: same (sum, carry) pairs.
    let p1: Vec<_> = a1.adders.iter().map(|a| (a.sum, a.carry)).collect();
    let p2: Vec<_> = a2.adders.iter().map(|a| (a.sum, a.carry)).collect();
    assert_eq!(p1, p2);
}

/// Technology mapping preserves function for every workload/library combo,
/// and the post-mapping netlist still contains a discoverable adder tree.
#[test]
fn mapping_keeps_adder_trees_discoverable() {
    for kind in [MultiplierKind::Csa, MultiplierKind::Booth] {
        let m = generate_multiplier(kind, 6);
        let exact_before = gamora_exact::analyze(&m.aig).adders.len();
        for lib in [Library::simple(), Library::complex7nm()] {
            let mapped = map(&m.aig, &lib, &MapParams::default());
            let back = mapped.to_aig();
            assert!(
                sim::random_equivalence_check(&m.aig, &back, 8, 2).is_ok(),
                "{kind} x {} changed function",
                lib.name
            );
            let exact_after = gamora_exact::analyze(&back).adders.len();
            assert!(
                exact_after > 0,
                "{kind} x {}: no adders found after mapping",
                lib.name
            );
            // Mapping may merge or restructure slices, but the tree should
            // stay in the same ballpark.
            assert!(
                exact_after * 3 >= exact_before,
                "{kind} x {}: tree collapsed from {exact_before} to {exact_after}",
                lib.name
            );
        }
    }
}

/// Algebraic verification accepts the mapped netlists too (the spec is
/// over inputs, so it carries across mapping).
#[test]
fn sca_verifies_post_mapping_netlists() {
    let m = csa_multiplier(5);
    let spec = product_spec(&m.a, &m.b);
    for lib in [Library::simple(), Library::complex7nm()] {
        let mapped = map(&m.aig, &lib, &MapParams::default());
        let back = mapped.to_aig();
        // Input order is preserved by construction; verify directly.
        let analysis = gamora_exact::analyze(&back);
        let report = verify(
            &back,
            &spec,
            Some(&analysis.adders),
            &RewriteParams::default(),
        )
        .expect("within budget");
        assert!(report.equivalent, "{}: {report}", lib.name);
    }
}

/// The naive and adder-aware flows agree on validity, while the assisted
/// flow does strictly less gate-level work.
#[test]
fn assisted_rewriting_is_cheaper() {
    let m = booth_multiplier(5);
    let spec = product_spec(&m.a, &m.b);
    let naive = verify(&m.aig, &spec, None, &RewriteParams::default()).unwrap();
    let analysis = gamora_exact::analyze(&m.aig);
    let aware = verify(
        &m.aig,
        &spec,
        Some(&analysis.adders),
        &RewriteParams::default(),
    )
    .unwrap();
    assert!(naive.equivalent && aware.equivalent);
    assert!(aware.stats.substitutions < naive.stats.substitutions);
    assert!(aware.stats.peak_terms <= naive.stats.peak_terms);
}

/// Exact extraction covers generator provenance across kinds and widths.
/// CSA trees are recovered exactly; Booth allows a small slack because its
/// encoder logic contains additional functional (XOR, AND) pairs that can
/// claim a structurally-shared node first — the same ambiguity ABC's
/// functional extraction exhibits on Booth netlists.
#[test]
fn exact_extraction_matches_provenance_matrix() {
    for (kind, widths, min_recall) in [
        (MultiplierKind::Csa, vec![2usize, 5, 10, 12], 1.0),
        (MultiplierKind::Booth, vec![5usize, 7, 10], 0.95),
    ] {
        for bits in widths {
            let m = generate_multiplier(kind, bits);
            let analysis = gamora_exact::analyze(&m.aig);
            let cmp = gamora_exact::compare_with_reference(
                &analysis.adders,
                m.provenance
                    .real_adders()
                    .map(|r| (r.sum.var(), r.carry.var())),
            );
            assert!(cmp.recall() >= min_recall, "{kind} {bits}-bit: {cmp}");
        }
    }
}

/// Alternative architectures (Dadda multiplier, carry-select adder) also
/// yield extractable adder trees — reasoning is not specific to the two
/// paper families.
#[test]
fn alternative_architectures_are_extractable() {
    let dadda = gamora_circuits::dadda_multiplier(6);
    let analysis = gamora_exact::analyze(&dadda.aig);
    let cmp = gamora_exact::compare_with_reference(
        &analysis.adders,
        dadda
            .provenance
            .real_adders()
            .map(|r| (r.sum.var(), r.carry.var())),
    );
    assert!(cmp.recall() > 0.95, "dadda: {cmp}");

    let csel = gamora_circuits::carry_select_adder(8);
    let analysis = gamora_exact::analyze(&csel.aig);
    let cmp = gamora_exact::compare_with_reference(
        &analysis.adders,
        csel.provenance
            .real_adders()
            .map(|r| (r.sum.var(), r.carry.var())),
    );
    assert!(cmp.recall() > 0.9, "carry-select: {cmp}");

    // And the Dadda product is algebraically correct.
    let spec = product_spec(&dadda.a, &dadda.b);
    let report = verify(
        &dadda.aig,
        &spec,
        Some(&gamora_exact::analyze(&dadda.aig).adders),
        &RewriteParams::default(),
    )
    .unwrap();
    assert!(report.equivalent, "{report}");
}
