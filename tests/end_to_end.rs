//! End-to-end integration: train Gamora on small multipliers, reason about
//! larger ones, extract adder trees — the full pipeline of the paper.

use gamora::{
    compare_extraction, lsb_correction, GamoraReasoner, ModelDepth, ReasonerConfig, TrainConfig,
};
use gamora_circuits::{booth_multiplier, csa_multiplier};

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        ..TrainConfig::default()
    }
}

/// The headline result: a shallow model trained on ≤8-bit CSA multipliers
/// generalises to a 32-bit multiplier with near-perfect node accuracy.
#[test]
fn csa_generalisation_small_to_large() {
    let train: Vec<_> = [3usize, 4, 5, 6, 7, 8].iter().map(|&b| csa_multiplier(b)).collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig::default());
    reasoner.fit(&refs, &train_cfg(300));
    let eval = reasoner.evaluate(&csa_multiplier(32).aig);
    assert!(
        eval.mean() > 0.97,
        "expected near-exact reasoning on 32-bit CSA: {eval}"
    );
}

/// Prediction-driven adder extraction recovers almost the whole tree, and
/// LSB post-processing closes the systematic shallow misses.
#[test]
fn extraction_recall_with_postprocessing() {
    let train: Vec<_> = [3usize, 4, 5, 6].iter().map(|&b| csa_multiplier(b)).collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig::default());
    reasoner.fit(&refs, &train_cfg(300));

    let subject = csa_multiplier(16);
    let preds = reasoner.predict(&subject.aig);
    let (mut adders, cmp) = compare_extraction(&subject.aig, &preds);
    let before = cmp.recall();
    lsb_correction(&subject.aig, &mut adders);
    let exact = gamora_exact::analyze(&subject.aig);
    let after = gamora_exact::compare_with_reference(
        &adders,
        exact.adders.iter().map(|a| (a.sum, a.carry)),
    );
    assert!(
        after.recall() >= before,
        "post-processing must not hurt: {before} -> {}",
        after.recall()
    );
    assert!(
        after.recall() > 0.9,
        "16-bit CSA adder recall too low: {after}"
    );
}

/// The deep model handles Booth multipliers; trained on 6-10 bit, evaluated
/// on 16-bit.
#[test]
fn booth_needs_capacity_but_generalises() {
    let train: Vec<_> = [6usize, 8, 10].iter().map(|&b| booth_multiplier(b)).collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom { layers: 6, hidden: 48 },
        ..ReasonerConfig::default()
    });
    reasoner.fit(&refs, &train_cfg(260));
    let eval = reasoner.evaluate(&booth_multiplier(16).aig);
    assert!(eval.mean() > 0.9, "Booth 16-bit: {eval}");
}

/// Multi-task training beats the collapsed single-task formulation on the
/// same budget (the paper's Figure 4 claim).
#[test]
fn multi_task_beats_single_task() {
    let train: Vec<_> = [3usize, 4, 5, 6].iter().map(|&b| csa_multiplier(b)).collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let subject = csa_multiplier(12);

    let mut multi = GamoraReasoner::new(ReasonerConfig::default());
    multi.fit(&refs, &train_cfg(200));
    let multi_acc = multi.evaluate(&subject.aig).mean();

    let mut single = GamoraReasoner::new(ReasonerConfig {
        multi_task: false,
        ..ReasonerConfig::default()
    });
    single.fit(&refs, &train_cfg(200));
    let single_acc = single.evaluate(&subject.aig).mean();

    assert!(
        multi_acc >= single_acc - 0.01,
        "multi-task {multi_acc:.4} should not lose to single-task {single_acc:.4}"
    );
}
