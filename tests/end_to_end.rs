//! End-to-end integration: train Gamora on small multipliers, reason about
//! larger ones, extract adder trees — the full pipeline of the paper —
//! plus the serve-path round trips (AIGER ingest, model snapshots, and the
//! structural-hash prediction cache of `gamora-serve`).

use gamora::{
    compare_extraction, extract_from_predictions, lsb_correction, snapshot, GamoraReasoner,
    ModelDepth, ReasonerConfig, SnapshotError, TrainConfig,
};
use gamora_aig::aiger;
use gamora_circuits::{booth_multiplier, csa_multiplier};
use gamora_serve::scheduler::{AnalysisKind, ServeConfig, Server};

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        ..TrainConfig::default()
    }
}

/// The headline result: a shallow model trained on ≤8-bit CSA multipliers
/// generalises to a 32-bit multiplier with near-perfect node accuracy.
#[test]
fn csa_generalisation_small_to_large() {
    let train: Vec<_> = [3usize, 4, 5, 6, 7, 8]
        .iter()
        .map(|&b| csa_multiplier(b))
        .collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig::default());
    reasoner.fit(&refs, &train_cfg(300));
    let eval = reasoner.evaluate(&csa_multiplier(32).aig);
    assert!(
        eval.mean() > 0.97,
        "expected near-exact reasoning on 32-bit CSA: {eval}"
    );
}

/// Prediction-driven adder extraction recovers almost the whole tree, and
/// LSB post-processing closes the systematic shallow misses.
#[test]
fn extraction_recall_with_postprocessing() {
    let train: Vec<_> = [3usize, 4, 5, 6]
        .iter()
        .map(|&b| csa_multiplier(b))
        .collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig::default());
    reasoner.fit(&refs, &train_cfg(300));

    let subject = csa_multiplier(16);
    let preds = reasoner.predict(&subject.aig);
    let (mut adders, cmp) = compare_extraction(&subject.aig, &preds);
    let before = cmp.recall();
    lsb_correction(&subject.aig, &mut adders);
    let exact = gamora_exact::analyze(&subject.aig);
    let after = gamora_exact::compare_with_reference(
        &adders,
        exact.adders.iter().map(|a| (a.sum, a.carry)),
    );
    assert!(
        after.recall() >= before,
        "post-processing must not hurt: {before} -> {}",
        after.recall()
    );
    assert!(
        after.recall() > 0.9,
        "16-bit CSA adder recall too low: {after}"
    );
}

/// The deep model handles Booth multipliers; trained on 6-10 bit, evaluated
/// on 16-bit.
#[test]
fn booth_needs_capacity_but_generalises() {
    let train: Vec<_> = [6usize, 8, 10]
        .iter()
        .map(|&b| booth_multiplier(b))
        .collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 6,
            hidden: 48,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(&refs, &train_cfg(260));
    let eval = reasoner.evaluate(&booth_multiplier(16).aig);
    assert!(eval.mean() > 0.9, "Booth 16-bit: {eval}");
}

fn quick_reasoner() -> GamoraReasoner {
    let train: Vec<_> = [3usize, 4].iter().map(|&b| csa_multiplier(b)).collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let mut reasoner = GamoraReasoner::new(ReasonerConfig {
        depth: ModelDepth::Custom {
            layers: 3,
            hidden: 16,
        },
        ..ReasonerConfig::default()
    });
    reasoner.fit(&refs, &train_cfg(120));
    reasoner
}

/// The full serving round trip: a netlist written to AIGER, parsed back,
/// predicted on by a snapshot-restored model, and extracted — with results
/// identical to the in-process pipeline at every step.
#[test]
fn aiger_parse_predict_extract_roundtrip() {
    let reasoner = quick_reasoner();
    let subject = csa_multiplier(8);

    // In-process reference: predict + extract + LSB post-processing.
    let expected_preds = reasoner.predict(&subject.aig);
    let mut expected_adders = extract_from_predictions(&subject.aig, &expected_preds);
    lsb_correction(&subject.aig, &mut expected_adders);

    // AIGER round trip (ASCII is the identity on canonical netlists).
    let mut buf = Vec::new();
    aiger::write_ascii(&subject.aig, &mut buf).unwrap();
    let parsed = aiger::read(&buf[..]).unwrap();
    assert_eq!(parsed.num_nodes(), subject.aig.num_nodes());

    // Snapshot round trip into a fresh reasoner.
    let mut snap = Vec::new();
    snapshot::write_snapshot(&reasoner, &mut snap).unwrap();
    let restored = snapshot::read_snapshot(&snap[..]).unwrap();

    // Serve the parsed netlist with the restored model.
    let server = Server::start(restored, ServeConfig::default());
    let out = server
        .submit(parsed, AnalysisKind::ExtractAdders)
        .expect("admitted")
        .wait()
        .expect("job answered");
    assert_eq!(out.predictions.root_leaf, expected_preds.root_leaf);
    assert_eq!(out.predictions.is_xor, expected_preds.is_xor);
    assert_eq!(out.predictions.is_maj, expected_preds.is_maj);
    let served_adders = out.adders.expect("extraction requested");
    let served_pairs: Vec<_> = served_adders.iter().map(|a| (a.sum, a.carry)).collect();
    let expected_pairs: Vec<_> = expected_adders.iter().map(|a| (a.sum, a.carry)).collect();
    assert_eq!(served_pairs, expected_pairs);
}

/// Repeated submissions are answered from the structural-hash cache with
/// zero additional forward passes; distinct netlists miss.
#[test]
fn serve_cache_hit_and_miss_accounting() {
    let server = Server::start(quick_reasoner(), ServeConfig::default());
    let subject = csa_multiplier(6);

    let first = server
        .submit(subject.aig.clone(), AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect("job answered");
    assert!(!first.cache_hit);
    let baseline = server.stats().forward_passes;

    // Repeat: cache hit, forward-pass counter frozen.
    let repeat = server
        .submit(subject.aig.clone(), AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect("job answered");
    assert!(repeat.cache_hit);
    assert_eq!(repeat.predictions.root_leaf, first.predictions.root_leaf);
    assert_eq!(
        server.stats().forward_passes,
        baseline,
        "cache hits must not run the GNN"
    );

    // A renumbered isomorph (binary AIGER round trip) also hits.
    let mut buf = Vec::new();
    aiger::write_binary(&subject.aig, &mut buf).unwrap();
    let isomorph = aiger::read(&buf[..]).unwrap();
    let transferred = server
        .submit(isomorph, AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect("job answered");
    assert!(
        transferred.cache_hit,
        "isomorphic submission should be cache-served"
    );
    assert_eq!(server.stats().forward_passes, baseline);

    // A different netlist is a genuine miss.
    let other = server
        .submit(csa_multiplier(5).aig, AnalysisKind::Classify)
        .expect("admitted")
        .wait()
        .expect("job answered");
    assert!(!other.cache_hit);
    let stats = server.shutdown();
    assert_eq!(stats.forward_passes, baseline + 1);
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_misses, 2);
}

/// A corrupted snapshot never loads: any bit flip trips the checksum (or
/// an earlier structural check), and truncation is caught too.
#[test]
fn corrupt_snapshots_are_rejected() {
    let reasoner = quick_reasoner();
    let mut pristine = Vec::new();
    snapshot::write_snapshot(&reasoner, &mut pristine).unwrap();
    assert!(snapshot::read_snapshot(&pristine[..]).is_ok());

    for pos in [9usize, 30, pristine.len() / 3, pristine.len() - 10] {
        let mut bad = pristine.clone();
        bad[pos] ^= 0x08;
        assert!(
            snapshot::read_snapshot(&bad[..]).is_err(),
            "bit flip at byte {pos} must be detected"
        );
    }

    let mut truncated = pristine.clone();
    truncated.truncate(truncated.len() / 2);
    assert!(matches!(
        snapshot::read_snapshot(&truncated[..]),
        Err(SnapshotError::Corrupt(_))
    ));
}

/// Multi-task training beats the collapsed single-task formulation on the
/// same budget (the paper's Figure 4 claim).
#[test]
fn multi_task_beats_single_task() {
    let train: Vec<_> = [3usize, 4, 5, 6]
        .iter()
        .map(|&b| csa_multiplier(b))
        .collect();
    let refs: Vec<&gamora_aig::Aig> = train.iter().map(|m| &m.aig).collect();
    let subject = csa_multiplier(12);

    let mut multi = GamoraReasoner::new(ReasonerConfig::default());
    multi.fit(&refs, &train_cfg(200));
    let multi_acc = multi.evaluate(&subject.aig).mean();

    let mut single = GamoraReasoner::new(ReasonerConfig {
        multi_task: false,
        ..ReasonerConfig::default()
    });
    single.fit(&refs, &train_cfg(200));
    let single_acc = single.evaluate(&subject.aig).mean();

    assert!(
        multi_acc >= single_acc - 0.01,
        "multi-task {multi_acc:.4} should not lose to single-task {single_acc:.4}"
    );
}
