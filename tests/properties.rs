//! Cross-crate property-based tests: random netlists through mapping,
//! extraction and algebraic rewriting.

use gamora_aig::{sim, Aig, Lit};
use gamora_sca::{backward_rewrite, output_signature, RewriteParams};
use gamora_techmap::{map, Library, MapParams};
use proptest::prelude::*;

/// Random multi-output AIG recipes (same scheme as the aig crate's
/// properties, but with several outputs).
#[derive(Clone, Debug)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, u16, bool, u16, bool)>,
    num_outputs: usize,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (2usize..6, 3usize..32, 1usize..4).prop_flat_map(|(num_inputs, num_steps, num_outputs)| {
        let step = (
            0u8..6,
            any::<u16>(),
            any::<bool>(),
            any::<u16>(),
            any::<bool>(),
        );
        proptest::collection::vec(step, num_steps).prop_map(move |steps| Recipe {
            num_inputs,
            steps,
            num_outputs,
        })
    })
}

fn build(recipe: &Recipe) -> Aig {
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = aig.add_inputs(recipe.num_inputs);
    for &(op, a, ac, b, bc) in &recipe.steps {
        let la = pool[a as usize % pool.len()].complement_if(ac);
        let lb = pool[b as usize % pool.len()].complement_if(bc);
        let r = match op {
            0 => aig.and(la, lb),
            1 => aig.or(la, lb),
            2 => aig.xor(la, lb),
            3 => aig.nand(la, lb),
            4 => aig.mux(la, lb, !lb),
            _ => aig.maj3(la, lb, !la),
        };
        pool.push(r);
    }
    for i in 0..recipe.num_outputs {
        aig.add_output(pool[pool.len() - 1 - (i % pool.len().min(4))]);
    }
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Technology mapping preserves the function of arbitrary logic for
    /// both built-in libraries.
    #[test]
    fn mapping_preserves_arbitrary_logic(r in recipe()) {
        let aig = build(&r);
        for lib in [Library::simple(), Library::complex7nm()] {
            let mapped = map(&aig, &lib, &MapParams::default());
            let back = mapped.to_aig();
            prop_assert!(
                sim::random_equivalence_check(&aig, &back, 4, 0xA11).is_ok(),
                "library {}", lib.name
            );
        }
    }

    /// Exact analysis never panics and its labels are self-consistent on
    /// arbitrary netlists (roots are XOR or MAJ labelled).
    #[test]
    fn exact_analysis_is_total_and_consistent(r in recipe()) {
        let aig = build(&r);
        let analysis = gamora_exact::analyze(&aig);
        for a in &analysis.adders {
            prop_assert!(analysis.labels.root_leaf[a.sum.index()].is_root());
            prop_assert!(analysis.labels.root_leaf[a.carry.index()].is_root());
            prop_assert!(analysis.labels.is_xor[a.sum.index()]);
            prop_assert!(analysis.labels.is_maj[a.carry.index()]);
        }
    }

    /// Backward rewriting of the output signature agrees with simulation:
    /// evaluating the reduced polynomial on random inputs equals the
    /// weighted sum of simulated outputs.
    #[test]
    fn rewriting_agrees_with_simulation(r in recipe(), pattern in any::<u64>()) {
        let aig = build(&r);
        let sig = output_signature(&aig);
        let (poly, _) = backward_rewrite(&aig, sig, None, &RewriteParams::default())
            .expect("small networks fit the budget");
        let inputs: Vec<bool> = (0..aig.num_inputs()).map(|i| pattern >> i & 1 != 0).collect();
        let outs = sim::eval(&aig, &inputs);
        let expected: i128 = outs
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as i128) << i)
            .sum();
        let input_ids: Vec<u32> = aig.inputs().iter().map(|n| n.as_u32()).collect();
        let got = poly.eval(|v| {
            let pos = input_ids.iter().position(|&x| x == v).expect("input var");
            inputs[pos]
        });
        prop_assert_eq!(got.to_i128(), Some(expected));
    }

    /// Prediction-driven extraction with oracle labels is *sound* on
    /// arbitrary netlists: every extracted root really is an exact root
    /// with the right function label, and the tree stays near-complete.
    /// (On arithmetic workloads the match is exact — see the unit tests in
    /// `gamora::extract` — but on adversarial graphs with duplicated
    /// functions the greedy pairing may legitimately pick a different,
    /// functionally equivalent partner.)
    #[test]
    fn oracle_extraction_is_sound(r in recipe()) {
        let aig = build(&r);
        let analysis = gamora_exact::analyze(&aig);
        let oracle = gamora::Predictions {
            root_leaf: analysis.labels.root_leaf.iter().map(|c| c.as_index() as u32).collect(),
            is_xor: analysis.labels.is_xor.clone(),
            is_maj: analysis.labels.is_maj.clone(),
        };
        let (predicted, _) = gamora::compare_extraction(&aig, &oracle);
        for a in &predicted {
            prop_assert!(analysis.labels.root_leaf[a.sum.index()].is_root());
            prop_assert!(analysis.labels.root_leaf[a.carry.index()].is_root());
            prop_assert!(analysis.labels.is_xor[a.sum.index()]);
            prop_assert!(analysis.labels.is_maj[a.carry.index()]);
        }
    }
}
